//! Continuous queries: parsed SPARQL queries registered once and
//! kept answered against the hybrid view after every ingested batch —
//! the paper's execution model ("these queries are executed once per
//! graph instance", §1) without rebuilding the store per instance, and
//! without re-running the query per instance either: eligible queries
//! are maintained **differentially** from the batch's captured delta
//! (see [`crate::incremental`]), so steady-state evaluation cost is
//! O(delta), not O(store).
//!
//! [`StreamSession`] is generic over any ingestible [`TripleSource`]
//! (the [`StreamStore`] seam): the single-overlay [`HybridStore`] and the
//! scatter/gather [`ShardedHybridStore`](crate::ShardedHybridStore) drive
//! the same registry. With more than one registered query the registry
//! evaluates them concurrently over the shared view — as jobs on the
//! store's persistent [`ShardRuntime`] when it runs one, on scoped
//! spawns otherwise.

use crate::error::StreamError;
use crate::hybrid::{BatchDelta, HybridStore, IngestReport};
use crate::incremental::{self, choose_strategy, EvalStrategy, MaterializedState};
use crate::runtime::ShardRuntime;
use crate::shard::ShardedHybridStore;
use crate::wal::{WalHealth, WalRecord};
use se_core::TripleSource;
use se_rdf::Graph;
use se_sparql::ast::Query;
use se_sparql::error::{QueryError, SparqlParseError};
use se_sparql::{parse_query, PlanCache, QueryOptions, ResultSet};
use std::sync::Arc;

/// An updatable [`TripleSource`]: the seam [`StreamSession`] drives.
pub trait StreamStore: TripleSource {
    /// Applies one batch (deletions first, then insertions), returning
    /// the ingest accounting.
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError>;

    /// Turns capture of per-batch net deltas on [`IngestReport::delta`]
    /// on or off. Stores that cannot capture deltas may ignore this;
    /// incremental queries then fall back to full re-evaluation.
    fn set_delta_capture(&mut self, _on: bool) {}

    /// The store's persistent worker pool, if it runs one: continuous
    /// queries are evaluated as jobs on these workers instead of
    /// per-batch scoped spawns, so the whole session — ingest,
    /// compaction, query fan-out — shares one bounded thread budget.
    fn shared_runtime(&self) -> Option<&ShardRuntime> {
        None
    }

    /// Drains any buffered write-ahead-log records to disk. A no-op for
    /// stores without an attached WAL; callers that stop applying
    /// batches (graceful shutdown) use it to make the tail durable under
    /// lazy sync policies.
    fn wal_flush(&self) -> Result<(), StreamError> {
        Ok(())
    }

    /// The store's current epoch: the count of successfully applied
    /// batches (plus any epoch alignment — see
    /// [`StreamStore::align_epoch`]). Replication and the plan cache's
    /// staleness clock both key off this.
    fn epoch(&self) -> u64;

    /// Forces the store's epoch to `epoch` without applying anything —
    /// the replication bootstrap: a follower that just rebuilt its state
    /// from a leader snapshot aligns to the leader's epoch so subsequent
    /// WAL records replay under the consecutive-epoch invariant. Not for
    /// general use; misaligning a store with an attached WAL corrupts
    /// its log's epoch sequence.
    fn align_epoch(&mut self, epoch: u64);

    /// Operator-visible WAL durability state. The default covers stores
    /// without WAL support (nothing attached, nothing failed).
    fn wal_health(&self) -> WalHealth {
        WalHealth::default()
    }
}

/// Replays one shipped WAL record into a store under the
/// consecutive-epoch invariant: the record must carry exactly
/// `store.epoch() + 1` (anything else is a gap or a replayed duplicate —
/// the caller re-syncs instead of guessing), and the delta's removals
/// apply before its additions, exactly like crash recovery's
/// `replay_wal`.
pub fn replay_record<S: StreamStore>(
    store: &mut S,
    rec: &WalRecord,
) -> Result<IngestReport, StreamError> {
    let expected = store.epoch() + 1;
    if rec.epoch != expected {
        return Err(StreamError::Corrupt(format!(
            "replication gap: expected epoch {expected}, record carries {}",
            rec.epoch
        )));
    }
    let inserts = Graph::from_triples(rec.delta.added.iter().cloned());
    let deletes = Graph::from_triples(rec.delta.removed.iter().cloned());
    let report = store.apply_batch(&inserts, &deletes)?;
    debug_assert_eq!(store.epoch(), rec.epoch, "apply advances exactly one epoch");
    Ok(report)
}

impl StreamStore for HybridStore {
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError> {
        self.apply(inserts, deletes)
    }

    fn set_delta_capture(&mut self, on: bool) {
        HybridStore::set_delta_capture(self, on);
    }

    fn wal_flush(&self) -> Result<(), StreamError> {
        HybridStore::wal_flush(self)
    }

    fn epoch(&self) -> u64 {
        HybridStore::epoch(self)
    }

    fn align_epoch(&mut self, epoch: u64) {
        HybridStore::align_epoch(self, epoch);
    }

    fn wal_health(&self) -> WalHealth {
        HybridStore::wal_health(self)
    }
}

impl StreamStore for ShardedHybridStore {
    fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<IngestReport, StreamError> {
        self.apply(inserts, deletes)
    }

    fn set_delta_capture(&mut self, on: bool) {
        ShardedHybridStore::set_delta_capture(self, on);
    }

    fn shared_runtime(&self) -> Option<&ShardRuntime> {
        self.runtime()
    }

    fn wal_flush(&self) -> Result<(), StreamError> {
        ShardedHybridStore::wal_flush(self)
    }

    fn epoch(&self) -> u64 {
        ShardedHybridStore::epoch(self)
    }

    fn align_epoch(&mut self, epoch: u64) {
        ShardedHybridStore::align_epoch(self, epoch);
    }

    fn wal_health(&self) -> WalHealth {
        ShardedHybridStore::wal_health(self)
    }
}

/// One registered continuous query, with its materialized answers.
#[derive(Debug, Clone)]
pub struct ContinuousQuery {
    /// Caller-chosen identifier (reported with every result).
    pub id: String,
    /// The original SPARQL text — retained so a session checkpoint
    /// ([`StreamSession::save`](crate::persist)) can re-register the
    /// query verbatim after a restart.
    pub text: String,
    /// The parsed query (parsed once at registration).
    pub query: Query,
    /// Execution options (reasoning on/off, optimizer switches).
    pub options: QueryOptions,
    /// Evaluation strategy, chosen once at registration.
    pub(crate) strategy: EvalStrategy,
    /// The materialized multiset (seeded by the first evaluation).
    pub(crate) state: MaterializedState,
}

impl ContinuousQuery {
    /// How this query is evaluated each batch.
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// `true` once the materialized multiset holds the query's answers
    /// (after its first evaluation).
    pub fn is_seeded(&self) -> bool {
        self.state.is_seeded()
    }
}

/// The answer of one continuous query after a batch: the per-batch
/// changes, plus (optionally) the full set.
#[derive(Debug, Clone)]
pub struct ContinuousResult {
    /// The query's registration id.
    pub id: String,
    /// Its full answer set over the post-batch view. Empty when the
    /// registry's `emit_full` is off and the delta path ran — the
    /// changes below are then the whole story.
    pub results: ResultSet,
    /// Rows that entered the answer set this batch. On the query's
    /// first (seeding) evaluation this is the entire answer set.
    pub added: ResultSet,
    /// Rows that left the answer set this batch.
    pub removed: ResultSet,
    /// The query's registered strategy.
    pub strategy: EvalStrategy,
    /// Whether this batch was served by the delta path (`false` for the
    /// seeding evaluation and for [`EvalStrategy::Full`] queries).
    pub incremental: bool,
}

impl ContinuousResult {
    /// `true` if the batch left this query's answers untouched.
    pub fn unchanged(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// How a registry evaluation round distributes its queries.
enum EvalMode<'rt> {
    /// One after another on the calling thread.
    Sequential,
    /// One scoped worker per query.
    Scoped,
    /// Jobs on a store's persistent [`ShardRuntime`].
    Pooled(&'rt ShardRuntime),
}

/// Holds parsed continuous queries and their materialized answers, and
/// evaluates them on demand.
#[derive(Debug, Clone)]
pub struct ContinuousQueryRegistry {
    queries: Vec<ContinuousQuery>,
    emit_full: bool,
    /// Shared compiled-plan cache: seeding and full-fallback evaluations
    /// go through it (shape-level reuse across queries and with the
    /// server's QUERY path), so a re-registered or same-shape query
    /// skips optimize entirely. `None` keeps the plain interpreted path.
    plan_cache: Option<Arc<PlanCache>>,
}

impl Default for ContinuousQueryRegistry {
    fn default() -> Self {
        Self {
            queries: Vec::new(),
            emit_full: true,
            plan_cache: None,
        }
    }
}

impl ContinuousQueryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and registers a query under `id`, choosing its
    /// [`EvalStrategy`]. Re-registering an id replaces the previous
    /// query and drops its materialized state; the next evaluation
    /// seeds afresh from the store (mid-stream registrations therefore
    /// pick up all pre-existing state). Deltas the store captured while
    /// the query was unregistered are irrelevant by construction.
    pub fn register(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        let id = id.into();
        let query = parse_query(text)?;
        self.queries.retain(|q| q.id != id);
        let strategy = choose_strategy(&query);
        self.queries.push(ContinuousQuery {
            id,
            text: text.to_string(),
            query,
            options,
            strategy,
            state: MaterializedState::default(),
        });
        Ok(())
    }

    /// Removes the query registered under `id` — and frees its
    /// materialized multiset; returns whether it existed.
    pub fn deregister(&mut self, id: &str) -> bool {
        let before = self.queries.len();
        self.queries.retain(|q| q.id != id);
        self.queries.len() != before
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The registered queries, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ContinuousQuery> + '_ {
        self.queries.iter()
    }

    /// Registered queries per strategy: `(incremental, full)`.
    pub fn strategy_counts(&self) -> (usize, usize) {
        let incr = self
            .queries
            .iter()
            .filter(|q| q.strategy == EvalStrategy::Incremental)
            .count();
        (incr, self.queries.len() - incr)
    }

    /// `true` if any registered query can use a captured batch delta.
    pub fn wants_delta(&self) -> bool {
        self.queries
            .iter()
            .any(|q| q.strategy == EvalStrategy::Incremental)
    }

    /// Demotes the query registered under `id` to full re-evaluation
    /// (dropping its materialized counts); returns whether it existed.
    /// Benchmarks use this to compare the two paths on equal footing.
    pub fn force_full(&mut self, id: &str) -> bool {
        match self.queries.iter_mut().find(|q| q.id == id) {
            Some(q) => {
                q.strategy = EvalStrategy::Full;
                q.state = MaterializedState::default();
                true
            }
            None => false,
        }
    }

    /// Whether evaluations materialize the full answer set on the delta
    /// path (on by default). Turning it off makes [`ContinuousResult::
    /// results`] empty for delta-served batches — subscribers that only
    /// consume changes skip the O(result) copy per tick.
    pub fn set_emit_full(&mut self, on: bool) {
        self.emit_full = on;
    }

    /// Routes seeding and full-fallback evaluations through `cache`
    /// (shared with other consumers — e.g. the server's QUERY path).
    /// The delta path is unaffected: it never re-plans.
    pub fn set_plan_cache(&mut self, cache: Arc<PlanCache>) {
        self.plan_cache = Some(cache);
    }

    /// The shared plan cache, if one is installed.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Evaluates every registered query against `source`, sequentially.
    /// Without a captured delta every query (re-)seeds from the store —
    /// results are always the query's exact answers over `source`.
    pub fn evaluate_all<S: TripleSource + ?Sized>(
        &mut self,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        self.evaluate_with(source, None, EvalMode::Sequential)
    }

    /// Evaluates every registered query against `source`, one scoped
    /// worker per query sharing `&S` (sound because [`TripleSource`]
    /// carries `Send + Sync`). Falls back to the sequential path when at
    /// most one query is registered or the host has a single core (a
    /// thread spawn costs more than a cheap query). Results keep
    /// registration order.
    pub fn evaluate_all_parallel<S: TripleSource + ?Sized>(
        &mut self,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        self.evaluate_with(source, None, EvalMode::Scoped)
    }

    /// Evaluates every registered query against `source` as jobs on a
    /// store's persistent [`ShardRuntime`] — no per-batch thread spawns.
    /// The runtime distributes the queries over its currently-idle
    /// workers (ones busy with a background rebuild are skipped) and the
    /// call blocks until all have answered, so the borrows of `source`
    /// never outlive the call. Falls back to the sequential path when at
    /// most one query is registered. Results keep registration order.
    pub fn evaluate_all_pooled<S: TripleSource + ?Sized>(
        &mut self,
        runtime: &ShardRuntime,
        source: &S,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        self.evaluate_with(source, None, EvalMode::Pooled(runtime))
    }

    /// The one evaluation driver behind every public variant: runs
    /// [`incremental::evaluate_query`] once per registered query —
    /// delta-fed for seeded incremental queries, full otherwise — and
    /// only the distribution of those calls differs per [`EvalMode`].
    fn evaluate_with<S: TripleSource + ?Sized>(
        &mut self,
        source: &S,
        delta: Option<&BatchDelta>,
        mode: EvalMode<'_>,
    ) -> Result<Vec<ContinuousResult>, QueryError> {
        let emit_full = self.emit_full;
        let cache = self.plan_cache.clone();
        let eval = |q: &mut ContinuousQuery| {
            incremental::evaluate_query(q, source, delta, emit_full, cache.as_deref())
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let answers: Vec<Result<ContinuousResult, QueryError>> = match mode {
            EvalMode::Pooled(runtime) if self.queries.len() > 1 => {
                let mut slots: Vec<Option<Result<ContinuousResult, QueryError>>> =
                    (0..self.queries.len()).map(|_| None).collect();
                let eval = &eval;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
                    .queries
                    .iter_mut()
                    .zip(slots.iter_mut())
                    .map(|(q, slot)| {
                        Box::new(move || {
                            *slot = Some(eval(q));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                if let Err(msg) = runtime.run_scoped(tasks) {
                    // Mirror the scoped path's contract: a panicking
                    // query worker panics the caller, payload preserved.
                    panic!("query worker panicked: {msg}");
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("run_scoped ran every task"))
                    .collect()
            }
            EvalMode::Scoped if self.queries.len() > 1 && cores > 1 => {
                let eval = &eval;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .queries
                        .iter_mut()
                        .map(|q| scope.spawn(move || eval(q)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("query worker panicked"))
                        .collect()
                })
            }
            _ => self.queries.iter_mut().map(eval).collect(),
        };
        answers.into_iter().collect()
    }
}

/// Outcome of one streamed batch: what the ingest did plus every
/// continuous-query answer over the new state.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Ingest accounting (insert/delete/no-op counts, compaction flag,
    /// and — when any incremental query is registered — the captured
    /// net [`BatchDelta`]).
    pub report: IngestReport,
    /// Continuous-query answers, in registration order.
    pub results: Vec<ContinuousResult>,
}

/// Session counters: how continuous queries were served and how big the
/// captured batch deltas were, so the incremental-vs-fallback rate is
/// observable (mirrored into the server's STATS reply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Batches applied through the session.
    pub batches: u64,
    /// Query evaluations served by the delta path.
    pub incremental_evals: u64,
    /// Full (re-)evaluations: seeding, fallback queries, and batches
    /// without a captured delta.
    pub full_evals: u64,
    /// Net triples added across all captured batch deltas.
    pub delta_added: u64,
    /// Net triples removed across all captured batch deltas.
    pub delta_removed: u64,
    /// Net added/removed sizes of the most recent captured delta.
    pub last_delta_added: u64,
    /// See [`StreamStats::last_delta_added`].
    pub last_delta_removed: u64,
    /// Plan-cache executions that reused a cached plan with zero
    /// parsing (zero when no [`PlanCache`] is installed — likewise for
    /// the four counters below).
    pub plan_hits: u64,
    /// Plan-cache executions that parsed and/or compiled.
    pub plan_misses: u64,
    /// Fresh plan compilations (excludes re-costs).
    pub plan_compiles: u64,
    /// Plan/text entries dropped by the cache's LRU caps.
    pub plan_evictions: u64,
    /// Stale plans re-ordered after the store epoch advanced past the
    /// staleness threshold.
    pub plan_recosts: u64,
    /// 1 when the store's WAL is poisoned (a failed append rejects all
    /// later appends until a checkpoint heals it) — applied batches are
    /// no longer durable. 0 when healthy or no WAL is attached.
    pub wal_poisoned: u64,
    /// WAL appends that returned an error (initial failures and
    /// poisoned rejections alike) — climbs while degradation persists.
    pub wal_appends_failed: u64,
}

impl StreamStats {
    fn record(&mut self, report: &IngestReport, results: &[ContinuousResult]) {
        self.batches += 1;
        if let Some(delta) = &report.delta {
            let (a, r) = (delta.added.len() as u64, delta.removed.len() as u64);
            self.delta_added += a;
            self.delta_removed += r;
            self.last_delta_added = a;
            self.last_delta_removed = r;
        }
        for res in results {
            if res.incremental {
                self.incremental_evals += 1;
            } else {
                self.full_evals += 1;
            }
        }
    }
}

/// A streaming session: an ingestible store (single-overlay
/// [`HybridStore`] by default, or the scatter/gather
/// [`ShardedHybridStore`](crate::ShardedHybridStore)) plus a
/// [`ContinuousQueryRegistry`], driven batch by batch.
#[derive(Debug, Clone)]
pub struct StreamSession<S: StreamStore = HybridStore> {
    store: S,
    registry: ContinuousQueryRegistry,
    stats: StreamStats,
    /// Keep per-batch delta capture on even with no incremental query
    /// registered — a leader shipping WAL records to replicas needs
    /// every tick's net delta regardless of its own subscriptions.
    force_delta_capture: bool,
}

impl<S: StreamStore> StreamSession<S> {
    /// Wraps an existing store.
    pub fn new(store: S) -> Self {
        Self {
            store,
            registry: ContinuousQueryRegistry::new(),
            stats: StreamStats::default(),
            force_delta_capture: false,
        }
    }

    /// Forces per-batch delta capture on (or releases the force),
    /// independent of whether any registered query wants deltas. The
    /// server turns this on while replicas are attached so every tick's
    /// net delta is available to ship.
    pub fn set_force_delta_capture(&mut self, on: bool) {
        self.force_delta_capture = on;
    }

    /// Parses and registers a continuous query. The next batch (or
    /// evaluation) seeds its materialized answers with one full run
    /// over the current store state.
    pub fn register_query(
        &mut self,
        id: impl Into<String>,
        text: &str,
        options: QueryOptions,
    ) -> Result<(), SparqlParseError> {
        self.registry.register(id, text, options)
    }

    /// The underlying store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access (manual compaction, policy changes).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The query registry.
    pub fn registry(&self) -> &ContinuousQueryRegistry {
        &self.registry
    }

    /// Mutable registry access (re-registering, deregistering).
    pub fn registry_mut(&mut self) -> &mut ContinuousQueryRegistry {
        &mut self.registry
    }

    /// The store and the mutable registry together — for evaluating the
    /// registry against the session's own store outside `apply_batch`.
    pub fn parts_mut(&mut self) -> (&S, &mut ContinuousQueryRegistry) {
        (&self.store, &mut self.registry)
    }

    /// Session counters (delta sizes, incremental-vs-full evaluations,
    /// and — when a [`PlanCache`] is installed on the registry — its
    /// cumulative plan-cache counters).
    pub fn stream_stats(&self) -> StreamStats {
        let mut stats = self.stats;
        if let Some(cache) = self.registry.plan_cache() {
            let ps = cache.stats();
            stats.plan_hits = ps.hits;
            stats.plan_misses = ps.misses;
            stats.plan_compiles = ps.compiles;
            stats.plan_evictions = ps.evictions;
            stats.plan_recosts = ps.recosts;
        }
        let health = self.store.wal_health();
        stats.wal_poisoned = health.poisoned as u64;
        stats.wal_appends_failed = health.appends_failed;
        stats
    }

    /// Ingests one batch (deletes, then inserts), compacts if the policy
    /// demands it, and brings every registered query's answers up to
    /// date over the new state — differentially from the batch's
    /// captured delta where possible, by full re-evaluation otherwise.
    /// Evaluation runs on the store's persistent worker pool when it has
    /// one (sharing the ingest workers' thread budget), otherwise on
    /// scoped spawns when more than one query is registered.
    pub fn apply_batch(
        &mut self,
        inserts: &Graph,
        deletes: &Graph,
    ) -> Result<BatchOutcome, StreamError> {
        self.store
            .set_delta_capture(self.force_delta_capture || self.registry.wants_delta());
        let report = self.store.apply_batch(inserts, deletes)?;
        // Publish the post-batch epoch so cached plans compiled against
        // much older cardinalities re-cost on their next use. The
        // store's epoch, not the session's batch count: a store loaded
        // from disk (or applied outside this session) is already past
        // batch 0, and the plan cache's staleness clock must follow the
        // store's true age.
        if let Some(cache) = self.registry.plan_cache() {
            cache.set_epoch(self.store.epoch());
        }
        let results = match self.store.shared_runtime() {
            Some(runtime) => self.registry.evaluate_with(
                &self.store,
                report.delta.as_ref(),
                EvalMode::Pooled(runtime),
            )?,
            None => {
                self.registry
                    .evaluate_with(&self.store, report.delta.as_ref(), EvalMode::Scoped)?
            }
        };
        self.stats.record(&report, &results);
        Ok(BatchOutcome { report, results })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::CompactionPolicy;
    use se_ontology::Ontology;
    use se_rdf::{Term, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), Term::iri(format!("http://x/{p}")), o)
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_object_property("http://x/knows");
        o.add_object_property("http://x/likes");
        o
    }

    fn store_with(triples: impl IntoIterator<Item = Triple>) -> HybridStore {
        HybridStore::build(&ontology(), &Graph::from_triples(triples)).unwrap()
    }

    #[test]
    fn reregistering_an_id_replaces_the_query() {
        let store = store_with([t("a", "knows", iri("b")), t("a", "likes", iri("c"))]);
        let mut reg = ContinuousQueryRegistry::new();
        reg.register(
            "q",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:knows ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(reg.evaluate_all(&store).unwrap()[0].results.len(), 1);
        // Same id, different query: the old one must be gone, position
        // and count unchanged.
        reg.register(
            "q",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:likes ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert_eq!(reg.len(), 1);
        let results = reg.evaluate_all(&store).unwrap();
        assert_eq!(results[0].id, "q");
        let row = &results[0].results.rows[0];
        assert_eq!(row[0].as_ref().unwrap(), &iri("c"));
        // The replacement re-seeded: its whole answer set is "added".
        assert_eq!(results[0].added.len(), 1);
        assert!(!results[0].incremental);
    }

    #[test]
    fn deregister_removes_and_reports() {
        let mut reg = ContinuousQueryRegistry::new();
        reg.register(
            "one",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:knows ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        reg.register(
            "two",
            "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:likes ?o }",
            QueryOptions::default(),
        )
        .unwrap();
        assert!(reg.deregister("one"));
        assert!(!reg.deregister("one"), "second removal reports absence");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let ids: Vec<&str> = reg.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids, vec!["two"]);
        assert!(reg.deregister("two"));
        assert!(reg.is_empty());
    }

    #[test]
    fn registration_rejects_unparseable_queries() {
        let mut reg = ContinuousQueryRegistry::new();
        assert!(reg
            .register("bad", "SELECT WHERE {", QueryOptions::default())
            .is_err());
        assert!(reg.is_empty(), "failed registration leaves no residue");
    }

    /// Continuous-query answers must be identical on the batch that
    /// crosses a compaction boundary and on the batches around it — the
    /// registry never notices the baseline swap.
    #[test]
    fn results_stable_across_compaction_boundary() {
        let store = store_with([t("a", "knows", iri("hub"))])
            .with_policy(CompactionPolicy { max_overlay: 3 });
        let mut session = StreamSession::new(store);
        session
            .register_query(
                "members",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        let mut expected = 1usize;
        let mut crossed = false;
        for round in 0..6 {
            let inserts = Graph::from_triples([t(&format!("n{round}"), "knows", iri("hub"))]);
            let out = session.apply_batch(&inserts, &Graph::new()).unwrap();
            expected += 1;
            assert_eq!(
                out.results[0].results.len(),
                expected,
                "round {round}: answer drifted (compacted={})",
                out.report.compacted
            );
            crossed |= out.report.compacted;
            if round > 0 {
                // After the seeding batch every round is delta-served
                // and reports exactly the inserted row as added.
                assert!(out.results[0].incremental);
                assert_eq!(out.results[0].added.len(), 1);
                assert!(out.results[0].removed.is_empty());
            }
        }
        assert!(crossed, "the stream must cross a compaction boundary");
        let stats = session.stream_stats();
        assert_eq!(stats.batches, 6);
        assert_eq!(stats.incremental_evals, 5);
        assert_eq!(stats.full_evals, 1, "only the seeding run was full");
        assert_eq!(stats.delta_added, 6);
        assert_eq!(stats.last_delta_added, 1);
        // Evaluating again without a batch gives the same answers —
        // parallel and sequential paths agree.
        let (store, reg) = session.parts_mut();
        let seq = reg.evaluate_all(store).unwrap();
        let par = reg.evaluate_all_parallel(store).unwrap();
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq[0].results.rows.len(), par[0].results.rows.len());
    }

    /// The sharded store drives the same generic session.
    #[test]
    fn session_is_generic_over_the_sharded_store() {
        let store = ShardedHybridStore::build(
            &ontology(),
            &Graph::from_triples([t("a", "knows", iri("hub"))]),
            2,
        )
        .unwrap();
        let mut session = StreamSession::new(store);
        session
            .register_query(
                "q",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        let out = session
            .apply_batch(
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert_eq!(out.report.inserted, 1);
        assert_eq!(out.results[0].results.len(), 2);
        // Next batch is served differentially on the sharded engine too.
        let out = session
            .apply_batch(
                &Graph::from_triples([t("c", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert!(out.results[0].incremental);
        assert_eq!(out.results[0].added.len(), 1);
        assert_eq!(out.results[0].results.len(), 3);
        session.store_mut().flush_compactions();
    }

    /// A query registered mid-stream seeds from the store state that
    /// accumulated before registration.
    #[test]
    fn mid_stream_registration_picks_up_existing_state() {
        let mut session = StreamSession::new(store_with([t("a", "knows", iri("hub"))]));
        session
            .apply_batch(
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        session
            .register_query(
                "late",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(
            session.registry().iter().next().unwrap().strategy(),
            EvalStrategy::Incremental
        );
        let out = session
            .apply_batch(
                &Graph::from_triples([t("c", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        // Seeding run: full evaluation, everything reported as added —
        // including the pre-registration triples.
        assert!(!out.results[0].incremental);
        assert_eq!(out.results[0].results.len(), 3);
        assert_eq!(out.results[0].added.len(), 3);
        // From here on, delta-served.
        let out = session
            .apply_batch(
                &Graph::new(),
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
            )
            .unwrap();
        assert!(out.results[0].incremental);
        assert_eq!(out.results[0].removed.len(), 1);
        assert_eq!(out.results[0].results.len(), 2);
    }

    /// Deregistering frees the materialized state; re-registering the
    /// same id starts unseeded and re-seeds on the next evaluation.
    #[test]
    fn reregister_after_deregister_reseeds() {
        let mut session = StreamSession::new(store_with([t("a", "knows", iri("hub"))]));
        let q = "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }";
        session
            .register_query("q", q, QueryOptions::default())
            .unwrap();
        session
            .apply_batch(
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert!(session.registry().iter().next().unwrap().is_seeded());
        assert!(session.registry_mut().deregister("q"));
        assert!(session.registry().is_empty(), "state freed with the query");
        session
            .register_query("q", q, QueryOptions::default())
            .unwrap();
        assert!(!session.registry().iter().next().unwrap().is_seeded());
        let out = session
            .apply_batch(
                &Graph::from_triples([t("c", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert!(
            !out.results[0].incremental,
            "first run after re-register seeds"
        );
        assert_eq!(out.results[0].results.len(), 3);
        assert!(session.registry().iter().next().unwrap().is_seeded());
    }

    /// A batch that deletes a triple a rider in the same tick re-inserts
    /// (Restored / Cancelled overlay states) nets to no delta — and the
    /// incremental path reports no changes.
    #[test]
    fn same_tick_delete_and_reinsert_nets_to_unchanged() {
        let mut session = StreamSession::new(store_with([t("a", "knows", iri("hub"))]));
        session
            .register_query(
                "q",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows e:hub }",
                QueryOptions::default(),
            )
            .unwrap();
        session.apply_batch(&Graph::new(), &Graph::new()).unwrap();
        // Restored: delete a baseline triple and re-insert it in the
        // same batch (deletes run first). Cancelled: insert a brand-new
        // triple and delete it in the same batch — net nothing.
        let both = Graph::from_triples([t("a", "knows", iri("hub"))]);
        let out = session.apply_batch(&both, &both).unwrap();
        assert!(out.results[0].incremental);
        assert!(out.results[0].unchanged());
        assert_eq!(out.results[0].results.len(), 1);
        let delta = out.report.delta.as_ref().expect("capture was on");
        assert!(delta.is_empty(), "delete+reinsert nets to zero");
        // And a genuinely new triple alongside a net-zero pair is the
        // only change reported.
        let out = session
            .apply_batch(
                &Graph::from_triples([t("a", "knows", iri("hub")), t("d", "knows", iri("hub"))]),
                &both,
            )
            .unwrap();
        assert!(out.results[0].incremental);
        assert_eq!(out.results[0].added.len(), 1);
        assert!(out.results[0].removed.is_empty());
    }

    /// FILTER queries fall back to full evaluation but still report
    /// per-batch changes by diffing.
    #[test]
    fn full_fallback_reports_diffs() {
        let mut session = StreamSession::new(store_with([t("a", "knows", iri("hub"))]));
        session
            .register_query(
                "q",
                "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows ?o FILTER(?o = e:hub) }",
                QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(
            session.registry().iter().next().unwrap().strategy(),
            EvalStrategy::Full
        );
        let out = session
            .apply_batch(
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
                &Graph::new(),
            )
            .unwrap();
        assert!(!out.results[0].incremental);
        assert_eq!(out.results[0].results.len(), 2);
        let out = session
            .apply_batch(
                &Graph::from_triples([t("c", "knows", iri("elsewhere"))]),
                &Graph::new(),
            )
            .unwrap();
        assert!(
            out.results[0].unchanged(),
            "filtered-out insert changes nothing"
        );
        let out = session
            .apply_batch(
                &Graph::new(),
                &Graph::from_triples([t("b", "knows", iri("hub"))]),
            )
            .unwrap();
        assert_eq!(out.results[0].removed.len(), 1);
        assert_eq!(session.stream_stats().incremental_evals, 0);
        assert_eq!(
            session.stream_stats().full_evals,
            3,
            "every batch re-evaluates"
        );
    }

    /// With a shared plan cache installed, seeding and fallback
    /// evaluations produce identical answers to the interpreted path,
    /// and the session's stream stats surface the cache counters.
    #[test]
    fn plan_cache_on_registry_agrees_and_is_counted() {
        let q = "PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:knows ?o FILTER(?o = e:hub) }";
        let triples = [t("a", "knows", iri("hub")), t("b", "knows", iri("hub"))];
        let mut plain = StreamSession::new(store_with(triples.clone()));
        let mut cached = StreamSession::new(store_with(triples));
        let cache = Arc::new(PlanCache::new());
        cached.registry_mut().set_plan_cache(cache.clone());
        for session in [&mut plain, &mut cached] {
            session
                .register_query("q", q, QueryOptions::default())
                .unwrap();
        }
        for round in 0..3 {
            let inserts = Graph::from_triples([t(&format!("n{round}"), "knows", iri("hub"))]);
            let a = plain.apply_batch(&inserts, &Graph::new()).unwrap();
            let b = cached.apply_batch(&inserts, &Graph::new()).unwrap();
            let rows = |r: &BatchOutcome| {
                let mut v: Vec<String> = r.results[0]
                    .results
                    .rows
                    .iter()
                    .map(|row| format!("{row:?}"))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(rows(&a), rows(&b), "round {round}");
        }
        let stats = cached.stream_stats();
        // This FILTER query re-evaluates fully every batch: one compile,
        // then shape-level hits with zero parsing.
        assert_eq!(stats.plan_compiles, 1);
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 2);
        assert_eq!(cache.stats().hits, 2, "session mirrors the cache");
        let plain_stats = plain.stream_stats();
        assert_eq!(plain_stats.plan_hits, 0, "no cache, zero counters");
        assert_eq!(plain_stats.plan_compiles, 0);
    }

    /// Regression: embedded callers that apply batches straight to the
    /// engine (no `StreamSession`) must still advance the plan cache's
    /// staleness clock — the epoch used to be published only from
    /// `StreamSession::apply_batch`, so direct applies never re-costed.
    #[test]
    fn direct_engine_apply_publishes_plan_cache_epoch() {
        use se_sparql::{PlanCache, PlanCacheConfig};
        let config = || PlanCacheConfig {
            recost_epochs: 2,
            ..PlanCacheConfig::default()
        };
        let q = "PREFIX e: <http://x/> SELECT ?o WHERE { e:a e:knows ?o }";
        let opts = QueryOptions::default();

        let mut store = store_with([t("a", "knows", iri("b"))]);
        let cache = Arc::new(PlanCache::with_config(config()));
        store.set_plan_cache(Arc::clone(&cache));
        cache.execute_text(&store, q, &opts).unwrap();
        assert_eq!(cache.stats().recosts, 0);
        for i in 0..3 {
            let g = Graph::from_triples([t("a", "knows", iri(&format!("n{i}")))]);
            store.apply(&g, &Graph::new()).unwrap();
        }
        cache.execute_text(&store, q, &opts).unwrap();
        assert_eq!(
            cache.stats().recosts,
            1,
            "hybrid: the plan compiled at epoch 0 re-costs after 3 direct applies"
        );

        let mut sharded = ShardedHybridStore::build(
            &ontology(),
            &Graph::from_triples([t("a", "knows", iri("b"))]),
            2,
        )
        .unwrap();
        let cache = Arc::new(PlanCache::with_config(config()));
        sharded.set_plan_cache(Arc::clone(&cache));
        cache.execute_text(&sharded, q, &opts).unwrap();
        for i in 0..3 {
            let g = Graph::from_triples([t("a", "knows", iri(&format!("n{i}")))]);
            sharded.apply(&g, &Graph::new()).unwrap();
        }
        cache.execute_text(&sharded, q, &opts).unwrap();
        assert_eq!(cache.stats().recosts, 1, "sharded: same staleness clock");
    }

    /// The session's stats surface WAL durability degradation instead of
    /// letting a poisoned log fail writes silently behind read traffic.
    #[test]
    fn stream_stats_surface_wal_health() {
        let dir = std::env::temp_dir().join(format!("se-cq-walhealth-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut store = store_with([t("a", "knows", iri("b"))]);
        store
            .attach_wal(&dir, crate::wal::WalConfig::default())
            .unwrap();
        let mut session = StreamSession::new(store);
        let stats = session.stream_stats();
        assert_eq!((stats.wal_poisoned, stats.wal_appends_failed), (0, 0));

        crate::fault::arm(&dir, 0, crate::fault::FaultMode::Fail);
        let g = Graph::from_triples([t("a", "knows", iri("c"))]);
        assert!(session.apply_batch(&g, &Graph::new()).is_err());
        crate::fault::disarm(&dir);
        assert!(session.apply_batch(&g, &Graph::new()).is_err());

        let stats = session.stream_stats();
        assert_eq!(stats.wal_poisoned, 1);
        assert_eq!(stats.wal_appends_failed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `replay_record` is the follower's sole ingest path: it must apply
    /// exactly-once in order and reject anything else.
    #[test]
    fn replay_record_enforces_the_consecutive_epoch_invariant() {
        let mut store = store_with([]);
        let rec = |epoch: u64, n: u64| WalRecord {
            epoch,
            delta: BatchDelta {
                added: vec![t(&format!("s{n}"), "knows", iri("o"))],
                removed: vec![],
            },
        };
        replay_record(&mut store, &rec(1, 1)).unwrap();
        replay_record(&mut store, &rec(2, 2)).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.len(), 2);
        // A gap or a replayed duplicate would silently fork history.
        assert!(replay_record(&mut store, &rec(4, 3)).is_err());
        assert!(replay_record(&mut store, &rec(2, 2)).is_err());
        assert_eq!(store.epoch(), 2, "rejected records change nothing");
        // Deletions replay too.
        let mut del = rec(3, 9);
        del.delta.removed = vec![t("s1", "knows", iri("o"))];
        let report = replay_record(&mut store, &del).unwrap();
        assert_eq!((report.inserted, report.deleted), (1, 1));
        assert_eq!(store.epoch(), 3);
    }
}
