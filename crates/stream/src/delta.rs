//! The mutable delta overlay: inserted/deleted triples in identifier
//! space, held in red-black trees (`se-rbtree`) until compaction folds
//! them into the succinct baseline.
//!
//! Every triple is keyed in **PSO** and **POS** order (mirroring the
//! baseline's single logical PSO index), `rdf:type` triples in the two
//! RDFType access paths `(concept, subject)` and `(subject, concept)`.
//! The tree *value* is a [`DeltaState`] recording how the triple relates
//! to the immutable baseline — `se-rbtree` intentionally has no deletion,
//! so state transitions overwrite in place:
//!
//! | state      | in baseline? | visible in hybrid view? |
//! |------------|--------------|-------------------------|
//! | `Added`    | no           | yes                     |
//! | `Deleted`  | yes          | no (tombstone)          |
//! | `Restored` | yes          | yes (tombstone undone)  |
//! | `Cancelled`| no           | no (insert undone)      |
//!
//! The [`HybridStore`](crate::HybridStore) performs the transitions (it
//! knows baseline membership); the `DeltaStore` enforces none of it and
//! simply stores what it is told.
//!
//! Literals are interned in a content-deduplicated side table; a delta
//! literal id is local to this overlay and is surfaced to the query layer
//! offset by [`crate::OVERFLOW_BASE`].

use se_rbtree::RbTree;
use se_rdf::Literal;
use std::collections::HashMap;
use std::ops::Bound::{Excluded, Included};

/// How a delta entry relates to the immutable baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaState {
    /// Not in the baseline; present in the hybrid view.
    Added,
    /// In the baseline; tombstoned out of the hybrid view.
    Deleted,
    /// In the baseline; a tombstone was cancelled by a re-insert.
    Restored,
    /// Not in the baseline; an overlay insert was cancelled by a delete.
    Cancelled,
}

impl DeltaState {
    /// `true` if the triple is visible in the hybrid view.
    pub fn present(self) -> bool {
        matches!(self, DeltaState::Added | DeltaState::Restored)
    }
}

/// Object position of a delta triple: an instance id or an interned
/// delta-local literal id. Instances order before literals, matching the
/// "object layer before datatype layer" convention of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeltaObj {
    /// Instance identifier (shared id space with the baseline).
    Inst(u64),
    /// Delta-local literal id (index into the overlay's literal table).
    Lit(u64),
}

/// The mutable overlay of inserted/deleted triples, in identifier space.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    /// Non-type triples, `(p, s, o)` order.
    pso: RbTree<(u64, u64, DeltaObj), DeltaState>,
    /// Non-type triples, `(p, o, s)` order.
    pos: RbTree<(u64, DeltaObj, u64), DeltaState>,
    /// `rdf:type` triples, `(concept, subject)` order.
    type_cs: RbTree<(u64, u64), DeltaState>,
    /// `rdf:type` triples, `(subject, concept)` order.
    type_sc: RbTree<(u64, u64), DeltaState>,
    /// Content-deduplicated literal table.
    literals: Vec<Literal>,
    literal_ids: HashMap<Literal, u64>,
    /// Number of entries currently in [`DeltaState::Added`].
    n_added: usize,
    /// Number of entries currently in [`DeltaState::Deleted`].
    n_deleted: usize,
}

impl DeltaStore {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of overlay entries (any state) — the compaction trigger
    /// metric: it measures overlay memory, not net triple count.
    pub fn overlay_len(&self) -> usize {
        self.pso.len() + self.type_cs.len()
    }

    /// Net effect on the triple count: `added - deleted`.
    pub fn net_triples(&self) -> isize {
        self.n_added as isize - self.n_deleted as isize
    }

    /// Entries in [`DeltaState::Added`].
    pub fn added(&self) -> usize {
        self.n_added
    }

    /// Entries in [`DeltaState::Deleted`].
    pub fn deleted(&self) -> usize {
        self.n_deleted
    }

    /// `true` if the overlay holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.overlay_len() == 0
    }

    // ------------------------------------------------------------- literals

    /// Interns a literal, returning its delta-local id.
    pub fn intern_literal(&mut self, lit: &Literal) -> u64 {
        if let Some(&id) = self.literal_ids.get(lit) {
            return id;
        }
        let id = self.literals.len() as u64;
        self.literals.push(lit.clone());
        self.literal_ids.insert(lit.clone(), id);
        id
    }

    /// The delta-local id of a literal, if interned.
    pub fn literal_id(&self, lit: &Literal) -> Option<u64> {
        self.literal_ids.get(lit).copied()
    }

    /// The literal at delta-local id `id`.
    pub fn literal(&self, id: u64) -> Option<&Literal> {
        self.literals.get(id as usize)
    }

    /// Number of interned literals.
    pub fn literal_count(&self) -> usize {
        self.literals.len()
    }

    /// The interned literals in id order (position = delta-local id) —
    /// the persistence layer serializes them in this order so re-interning
    /// on load reproduces identical ids.
    pub fn literals(&self) -> impl Iterator<Item = &Literal> + '_ {
        self.literals.iter()
    }

    // ---------------------------------------------------------- transitions

    fn bump(&mut self, old: Option<DeltaState>, new: DeltaState) {
        match old {
            Some(DeltaState::Added) => self.n_added -= 1,
            Some(DeltaState::Deleted) => self.n_deleted -= 1,
            _ => {}
        }
        match new {
            DeltaState::Added => self.n_added += 1,
            DeltaState::Deleted => self.n_deleted += 1,
            _ => {}
        }
    }

    /// Sets the state of a non-type triple.
    pub fn set(&mut self, p: u64, s: u64, o: DeltaObj, state: DeltaState) {
        let old = self.pso.insert((p, s, o), state);
        self.pos.insert((p, o, s), state);
        self.bump(old, state);
    }

    /// Sets the state of an `rdf:type` triple.
    pub fn set_type(&mut self, s: u64, c: u64, state: DeltaState) {
        let old = self.type_cs.insert((c, s), state);
        self.type_sc.insert((s, c), state);
        self.bump(old, state);
    }

    /// Current state of a non-type triple, if the overlay has an entry.
    pub fn state(&self, p: u64, s: u64, o: DeltaObj) -> Option<DeltaState> {
        self.pso.get(&(p, s, o)).copied()
    }

    /// Current state of an `rdf:type` triple.
    pub fn type_state(&self, s: u64, c: u64) -> Option<DeltaState> {
        self.type_sc.get(&(s, c)).copied()
    }

    // --------------------------------------------------------------- access

    /// Overlay entries for `(p, s, ?o)`, in object order.
    pub fn objects(&self, p: u64, s: u64) -> Vec<(DeltaObj, DeltaState)> {
        if s == u64::MAX {
            // Guard the exclusive upper bound below.
            return self
                .pso
                .range(
                    Included(&(p, s, DeltaObj::Inst(0))),
                    Excluded(&(p + 1, 0, DeltaObj::Inst(0))),
                )
                .map(|(&(_, _, o), &st)| (o, st))
                .collect();
        }
        self.pso
            .range(
                Included(&(p, s, DeltaObj::Inst(0))),
                Excluded(&(p, s + 1, DeltaObj::Inst(0))),
            )
            .map(|(&(_, _, o), &st)| (o, st))
            .collect()
    }

    /// Overlay entries for `(?s, p, o)`, in subject order.
    pub fn subjects(&self, p: u64, o: DeltaObj) -> Vec<(u64, DeltaState)> {
        self.pos
            .range(Included(&(p, o, 0)), Excluded(&(p, o, u64::MAX)))
            .map(|(&(_, _, s), &st)| (s, st))
            .collect()
    }

    /// Overlay entries for `(?s, p, ?o)`, in `(s, o)` order.
    pub fn scan(&self, p: u64) -> Vec<(u64, DeltaObj, DeltaState)> {
        self.pso
            .range(
                Included(&(p, 0, DeltaObj::Inst(0))),
                Excluded(&(p + 1, 0, DeltaObj::Inst(0))),
            )
            .map(|(&(_, s, o), &st)| (s, o, st))
            .collect()
    }

    /// Distinct predicates with overlay entries in `[lo, hi)`, ascending.
    pub fn predicates_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .pso
            .range(
                Included(&(lo, 0, DeltaObj::Inst(0))),
                Excluded(&(hi, 0, DeltaObj::Inst(0))),
            )
            .map(|(&(p, _, _), _)| p)
            .collect();
        out.dedup();
        out
    }

    /// All non-type overlay entries, in `(p, s, o)` order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, DeltaObj, DeltaState)> + '_ {
        self.pso.iter().map(|(&(p, s, o), &st)| (p, s, o, st))
    }

    /// Overlay entries for `(?s, rdf:type, c)` with `c ∈ [lo, hi)`, in
    /// `(concept, subject)` order.
    pub fn type_subjects_in(&self, lo: u64, hi: u64) -> Vec<(u64, u64, DeltaState)> {
        self.type_cs
            .range(Included(&(lo, 0)), Excluded(&(hi, 0)))
            .map(|(&(c, s), &st)| (c, s, st))
            .collect()
    }

    /// Overlay entries for `(s, rdf:type, ?c)` with `c ∈ [lo, hi)`, in
    /// concept order.
    pub fn type_concepts_of(&self, s: u64, lo: u64, hi: u64) -> Vec<(u64, DeltaState)> {
        self.type_sc
            .range(Included(&(s, lo)), Excluded(&(s, hi)))
            .map(|(&(_, c), &st)| (c, st))
            .collect()
    }

    /// All `rdf:type` overlay entries, in `(subject, concept)` order.
    pub fn type_iter(&self) -> impl Iterator<Item = (u64, u64, DeltaState)> + '_ {
        self.type_sc.iter().map(|(&(s, c), &st)| (s, c, st))
    }

    /// Drops every overlay entry (after a compaction).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_update_counters() {
        let mut d = DeltaStore::new();
        d.set(1, 2, DeltaObj::Inst(3), DeltaState::Added);
        assert_eq!((d.added(), d.deleted()), (1, 0));
        d.set(1, 2, DeltaObj::Inst(3), DeltaState::Cancelled);
        assert_eq!((d.added(), d.deleted()), (0, 0));
        d.set_type(9, 8, DeltaState::Deleted);
        assert_eq!((d.added(), d.deleted()), (0, 1));
        d.set_type(9, 8, DeltaState::Restored);
        assert_eq!((d.added(), d.deleted()), (0, 0));
        assert_eq!(d.overlay_len(), 2);
        assert_eq!(d.net_triples(), 0);
    }

    #[test]
    fn pso_and_pos_agree() {
        let mut d = DeltaStore::new();
        d.set(1, 5, DeltaObj::Inst(7), DeltaState::Added);
        d.set(1, 6, DeltaObj::Inst(7), DeltaState::Added);
        d.set(1, 5, DeltaObj::Inst(8), DeltaState::Deleted);
        d.set(2, 5, DeltaObj::Inst(7), DeltaState::Added);
        assert_eq!(
            d.objects(1, 5),
            vec![
                (DeltaObj::Inst(7), DeltaState::Added),
                (DeltaObj::Inst(8), DeltaState::Deleted)
            ]
        );
        assert_eq!(
            d.subjects(1, DeltaObj::Inst(7)),
            vec![(5, DeltaState::Added), (6, DeltaState::Added)]
        );
        assert_eq!(d.scan(1).len(), 3);
        assert_eq!(d.predicates_in(0, 10), vec![1, 2]);
        assert_eq!(d.predicates_in(2, 10), vec![2]);
    }

    #[test]
    fn literal_interning_deduplicates() {
        let mut d = DeltaStore::new();
        let a = d.intern_literal(&Literal::string("x"));
        let b = d.intern_literal(&Literal::string("x"));
        let c = d.intern_literal(&Literal::string("y"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.literal(a), Some(&Literal::string("x")));
        assert_eq!(d.literal_id(&Literal::string("y")), Some(c));
        assert_eq!(d.literal(99), None);
    }

    #[test]
    fn instances_order_before_literals() {
        let mut d = DeltaStore::new();
        let l = d.intern_literal(&Literal::string("v"));
        d.set(1, 5, DeltaObj::Lit(l), DeltaState::Added);
        d.set(1, 5, DeltaObj::Inst(9), DeltaState::Added);
        let objs: Vec<DeltaObj> = d.objects(1, 5).into_iter().map(|(o, _)| o).collect();
        assert_eq!(objs, vec![DeltaObj::Inst(9), DeltaObj::Lit(l)]);
    }

    #[test]
    fn type_access_paths() {
        let mut d = DeltaStore::new();
        d.set_type(10, 3, DeltaState::Added);
        d.set_type(11, 3, DeltaState::Added);
        d.set_type(10, 4, DeltaState::Deleted);
        assert_eq!(
            d.type_subjects_in(3, 4),
            vec![(3, 10, DeltaState::Added), (3, 11, DeltaState::Added)]
        );
        assert_eq!(
            d.type_concepts_of(10, 0, u64::MAX),
            vec![(3, DeltaState::Added), (4, DeltaState::Deleted)]
        );
        assert_eq!(d.type_state(10, 4), Some(DeltaState::Deleted));
        assert_eq!(d.type_state(12, 4), None);
    }
}
