//! Epoch-pinned MVCC snapshots of the streaming stores.
//!
//! [`StoreSnapshot`] is an immutable view of a [`HybridStore`] or
//! [`ShardedHybridStore`] frozen at one logical write epoch. Taking one
//! shares the succinct baseline layers by `Arc` (O(1)) and freezes the
//! overlay, overflow dictionaries and literal table by value
//! (O(overlay + dictionaries)); cloning one is an `Arc` bump (O(1)), so a
//! server hands the same snapshot to any number of reader threads. The
//! view implements the full [`TripleSource`] trait, so SPARQL execution
//! and continuous-query evaluation run against it unchanged — and, being
//! immutable, it never blocks (and is never blocked by) `apply` or
//! compaction on the live store.
//!
//! # Pin lifecycle
//!
//! Every snapshot holds a *pin* on its origin store, released when the
//! last clone drops:
//!
//! * swapped-out baseline generations stay alive exactly as long as a
//!   snapshot references them — `Arc` reclamation, no epoch bookkeeping
//!   on the read path;
//! * the sharded store's quiescence-only literal GC treats a non-zero
//!   pin count as non-quiescent, so `Value::Literal` ids decoded from a
//!   snapshot keep meaning the same content on the live store;
//! * the pin count is observable via `stats().live_pins` on both stores,
//!   making snapshot leaks visible.

use crate::hybrid::HybridStore;
use crate::shard::ShardedHybridStore;
use se_core::{TripleSource, Value};
use se_litemat::IdInterval;
use se_rdf::{Literal, Term};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The frozen store behind a snapshot. Both variants are full stores
/// that will never be written again: their `TripleSource` impls answer
/// every access over baseline + frozen overlay.
// The enum lives once per snapshot behind `Arc<SnapshotInner>`, so the
// variant size difference costs one heap allocation, not per-clone copies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SnapshotView {
    Hybrid(HybridStore),
    Sharded(ShardedHybridStore),
}

#[derive(Debug)]
struct SnapshotInner {
    view: SnapshotView,
    epoch: u64,
    /// The origin store's pin counter; incremented on construction,
    /// decremented on drop.
    pins: Arc<AtomicUsize>,
}

impl Drop for SnapshotInner {
    fn drop(&mut self) {
        self.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// An immutable, cheaply-clonable view of a streaming store at one
/// epoch. See the [module docs](self) for the lifecycle.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    inner: Arc<SnapshotInner>,
}

impl StoreSnapshot {
    pub(crate) fn from_hybrid(view: HybridStore, epoch: u64, pins: Arc<AtomicUsize>) -> Self {
        Self::pin(SnapshotView::Hybrid(view), epoch, pins)
    }

    pub(crate) fn from_sharded(
        view: ShardedHybridStore,
        epoch: u64,
        pins: Arc<AtomicUsize>,
    ) -> Self {
        Self::pin(SnapshotView::Sharded(view), epoch, pins)
    }

    fn pin(view: SnapshotView, epoch: u64, pins: Arc<AtomicUsize>) -> Self {
        pins.fetch_add(1, Ordering::AcqRel);
        Self {
            inner: Arc::new(SnapshotInner { view, epoch, pins }),
        }
    }

    /// The logical write epoch this snapshot was taken at: the number of
    /// `apply` batches the origin store had completed.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The frozen view as a trait object (all delegation funnels here).
    fn source(&self) -> &dyn TripleSource {
        match &self.inner.view {
            SnapshotView::Hybrid(h) => h,
            SnapshotView::Sharded(s) => s,
        }
    }
}

impl TripleSource for StoreSnapshot {
    fn instance_id(&self, term: &Term) -> Option<u64> {
        self.source().instance_id(term)
    }
    fn property_id(&self, iri: &str) -> Option<u64> {
        self.source().property_id(iri)
    }
    fn concept_id(&self, iri: &str) -> Option<u64> {
        self.source().concept_id(iri)
    }
    fn property_interval(&self, iri: &str) -> Option<IdInterval> {
        self.source().property_interval(iri)
    }
    fn concept_interval(&self, iri: &str) -> Option<IdInterval> {
        self.source().concept_interval(iri)
    }
    fn value_to_term(&self, value: Value) -> Option<Term> {
        self.source().value_to_term(value)
    }
    fn literal(&self, idx: u64) -> Option<&Literal> {
        match &self.inner.view {
            SnapshotView::Hybrid(h) => h.literal(idx),
            SnapshotView::Sharded(s) => s.literal(idx),
        }
    }
    fn values_join(&self, a: Value, b: Value) -> bool {
        self.source().values_join(a, b)
    }
    fn objects(&self, p: u64, s: u64) -> Vec<Value> {
        self.source().objects(p, s)
    }
    fn subjects(&self, p: u64, o: &Value) -> Vec<u64> {
        self.source().subjects(p, o)
    }
    fn subjects_by_literal(&self, p: u64, lit: &Literal) -> Vec<u64> {
        self.source().subjects_by_literal(p, lit)
    }
    fn scan_predicate(&self, p: u64) -> Vec<(u64, Value)> {
        self.source().scan_predicate(p)
    }
    fn contains(&self, p: u64, s: u64, o: &Value) -> bool {
        self.source().contains(p, s, o)
    }
    fn objects_interval(&self, p_iv: IdInterval, s: u64) -> Vec<Value> {
        self.source().objects_interval(p_iv, s)
    }
    fn subjects_interval(&self, p_iv: IdInterval, o: &Value) -> Vec<u64> {
        self.source().subjects_interval(p_iv, o)
    }
    fn subjects_by_literal_interval(&self, p_iv: IdInterval, lit: &Literal) -> Vec<u64> {
        self.source().subjects_by_literal_interval(p_iv, lit)
    }
    fn scan_interval(&self, p_iv: IdInterval) -> Vec<(u64, Value)> {
        self.source().scan_interval(p_iv)
    }
    fn subjects_of_concept(&self, c: u64) -> Vec<u64> {
        self.source().subjects_of_concept(c)
    }
    fn subjects_of_concept_interval(&self, iv: IdInterval) -> Vec<u64> {
        self.source().subjects_of_concept_interval(iv)
    }
    fn concepts_of_subject(&self, s: u64) -> Vec<u64> {
        self.source().concepts_of_subject(s)
    }
    fn has_type(&self, s: u64, c: u64) -> bool {
        self.source().has_type(s, c)
    }
    fn has_type_in_interval(&self, s: u64, iv: IdInterval) -> bool {
        self.source().has_type_in_interval(s, iv)
    }
    fn type_pairs(&self) -> Vec<(u64, u64)> {
        self.source().type_pairs()
    }
    fn len(&self) -> usize {
        self.source().len()
    }
    fn is_empty(&self) -> bool {
        self.source().is_empty()
    }
    fn predicate_count(&self, p: u64) -> usize {
        self.source().predicate_count(p)
    }
    fn predicate_interval_count(&self, iv: IdInterval) -> usize {
        self.source().predicate_interval_count(iv)
    }
    fn type_count(&self, iv: IdInterval) -> usize {
        self.source().type_count(iv)
    }
    fn type_total(&self) -> usize {
        self.source().type_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactionPolicy, ShardedHybridStore};
    use se_ontology::Ontology;
    use se_rdf::{Graph, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://snap.example/{s}"))
    }

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(iri(s), iri(p), o)
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.add_class("http://snap.example/C1", "");
        o.add_object_property("http://snap.example/knows");
        o.add_datatype_property("http://snap.example/age");
        o
    }

    fn batch(triples: Vec<Triple>) -> Graph {
        Graph::from_triples(triples)
    }

    /// A snapshot keeps answering at its epoch while the live store moves
    /// on — through a write *and* a compaction that swaps the baseline.
    #[test]
    fn hybrid_snapshot_is_isolated_from_later_writes_and_compaction() {
        let mut h = crate::HybridStore::build(&ontology(), &Graph::new())
            .unwrap()
            .with_policy(CompactionPolicy { max_overlay: 2 });
        h.apply(&batch(vec![t("a", "knows", iri("b"))]), &Graph::new())
            .unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(h.live_pins(), 1);
        // Two inserts cross max_overlay: the live store compacts and its
        // baseline Arc is replaced under the snapshot.
        let r = h
            .apply(
                &batch(vec![
                    t("a", "knows", iri("c")),
                    t("a", "age", Term::literal("7")),
                ]),
                &Graph::new(),
            )
            .unwrap();
        assert!(r.compacted);
        assert_eq!(h.epoch(), 2);
        assert_eq!(TripleSource::len(&h), 3);
        // The pinned view still sees exactly the epoch-1 store.
        assert_eq!(TripleSource::len(&snap), 1);
        let p = snap.property_id("http://snap.example/knows").unwrap();
        let a = snap.instance_id(&iri("a")).unwrap();
        assert_eq!(snap.objects(p, a).len(), 1);
        // Clones share the pin; dropping all of them releases it.
        let snap2 = snap.clone();
        assert_eq!(h.live_pins(), 1);
        drop(snap);
        assert_eq!(h.live_pins(), 1);
        drop(snap2);
        assert_eq!(h.live_pins(), 0);
        let stats = h.stats();
        assert_eq!(stats.snapshots, 1);
        assert_eq!(stats.epoch, 2);
    }

    /// Same isolation property for the sharded engine, including shard
    /// compactions racing the pinned reader.
    #[test]
    fn sharded_snapshot_is_isolated_from_later_writes() {
        let mut h = ShardedHybridStore::build(&ontology(), &Graph::new(), 3)
            .unwrap()
            .with_policy(CompactionPolicy { max_overlay: 2 })
            .with_background_compaction(false);
        h.apply(
            &batch(vec![t("a", "age", Term::literal("41"))]),
            &Graph::new(),
        )
        .unwrap();
        let snap = h.snapshot();
        assert_eq!(snap.epoch(), 1);
        // Replace the literal value: delete + insert, then push the shard
        // over its compaction threshold.
        h.apply(
            &batch(vec![
                t("a", "age", Term::literal("42")),
                t("a", "knows", iri("b")),
                t("b", "knows", iri("a")),
            ]),
            &batch(vec![t("a", "age", Term::literal("41"))]),
        )
        .unwrap();
        assert!(h.stats().compactions >= 1);
        let p = snap.property_id("http://snap.example/age").unwrap();
        let a = snap.instance_id(&iri("a")).unwrap();
        // The snapshot still answers the *old* literal.
        assert_eq!(snap.subjects_by_literal(p, &Literal::string("41")), vec![a]);
        assert!(snap
            .subjects_by_literal(p, &Literal::string("42"))
            .is_empty());
        assert_eq!(TripleSource::len(&snap), 1);
        assert_eq!(TripleSource::len(&h), 3);
        drop(snap);
        assert_eq!(h.live_pins(), 0);
    }

    /// Snapshots are Send + Sync + 'static: a reader thread can own one.
    #[test]
    fn snapshot_crosses_threads() {
        let mut h = crate::HybridStore::build(&ontology(), &Graph::new()).unwrap();
        h.apply(&batch(vec![t("a", "knows", iri("b"))]), &Graph::new())
            .unwrap();
        let snap = h.snapshot();
        let handle = std::thread::spawn(move || TripleSource::len(&snap));
        assert_eq!(handle.join().unwrap(), 1);
        assert_eq!(h.live_pins(), 0);
    }
}
