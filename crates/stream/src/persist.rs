//! Delta-aware v02 persistence: overlay snapshots + sharded manifest,
//! making shutdown/restart O(delta) instead of O(rebuild).
//!
//! The v01 path ([`HybridStore::save_to_file`]) collapses the paper's
//! baseline/overlay split at shutdown: it **compacts** (a full succinct
//! rebuild) and dumps the result, so saving a dirty store costs as much
//! as rebuilding it — and the sharded engine had no persistence at all.
//! v02 keeps the split on disk:
//!
//! * the immutable **baseline layers** are written once per compaction
//!   generation and *reused* by every later save (the store remembers
//!   what it already wrote — a steady-state save never re-serializes
//!   them);
//! * the mutable **overlay** — added triples, deletion tombstones with
//!   full [`DeltaState`] semantics, overflow dictionaries and the
//!   interned overlay-literal table — is snapshotted raw on every save,
//!   in O(delta);
//! * a small **manifest**, atomically replaced (write + rename), ties a
//!   consistent set of files together. A crash mid-save leaves the old
//!   manifest pointing at the old files.
//!
//! `save` therefore takes `&self`, performs **no compaction**, and costs
//! O(delta) once the baseline files exist. `load` rebuilds the store with
//! every identifier stable — no re-encoding — so continuous queries
//! resume over the reloaded store bit-identically
//! ([`StreamSession::resume`]).
//!
//! # Container framing
//!
//! Every v02 file is an `se-sds` container (see `se_sds::serialize`):
//! an 8-byte magic + little-endian `u32` format version, then
//! checksummed sections `[tag:4][len:u64][payload][fnv1a:u64]`. Bad
//! magic, versions from the future, truncation and bit rot each surface
//! as a distinct, clean [`StreamError`] — never a panic. All integers
//! are little-endian; strings are length-prefixed UTF-8 (`write_str`).
//!
//! # Single-store layout (`HybridStore`), one directory
//!
//! ```text
//! baseline-g<seq>.v01      raw, unchanged v01 SuccinctEdgeStore bytes
//!                          (loadable by SuccinctEdgeStore::load);
//!                          rewritten only after a compaction swapped the
//!                          baseline, under a directory-unique <seq> so a
//!                          file the current manifest references is never
//!                          overwritten
//! hybrid.manifest          magic "SEHYBv02", version 2, sections:
//!   META  baseline file name (str), baseline gen (u64),
//!         baseline FNV-1a checksum (u64), baseline byte length (u64),
//!         compaction policy max_overlay (u64)
//!   OVFI  overflow instances: base_len (u64), count (u64), keys (str…)
//!         — ids are `base_len + position`
//!   OVFP  overflow properties: count (u64), IRIs (str…) — ids are
//!         `OVERFLOW_BASE + position`
//!   OVFC  overflow concepts, same shape
//!   DELT  overlay: interned literal table (count + literals, id =
//!         position), then the delta entries (see *Overlay encoding*)
//! ```
//!
//! # Sharded layout (`ShardedHybridStore`), one directory
//!
//! ```text
//! dicts-g<seq>.bin         magic "SESHDv02": sections CONC, PROP — the
//!                          frozen global LiteMat dictionaries (written
//!                          once; the sharded store never re-encodes)
//! instances-<a>-<b>.seg    magic "SESHIv02": section INST — instance
//!                          dictionary entries [a, b): (key str,
//!                          count u64)…  Append-only segments: each save
//!                          writes only the ids interned since the last
//!                          one, keeping save O(delta)
//! shard-<i>-g<seq>.layers  magic "SESHLv02": sections OBJL (TripleLayer
//!                          bytes), DATL (DatatypeLayer bytes), TYPS
//!                          (count + (s,c) pairs) — rewritten only after
//!                          shard <i> compacted
//! shard-<i>-s<seq>.overlay magic "SESHOv02": section DELT — shard <i>'s
//!                          raw overlay (entries only; literal ids point
//!                          into the shared LITS table)
//! ```
//!
//! Every `<seq>` is **directory-unique** (strictly greater than any
//! number appearing in any existing file name — see `next_file_seq`),
//! even across process restarts, so a save can never overwrite a file
//! the on-disk manifest still references: the previous snapshot stays
//! loadable until the new manifest is atomically renamed into place,
//! after which unreferenced files are garbage-collected.
//!
//! ```text
//! store.manifest           magic "SESHMv02", version 2, sections:
//!   META  shard count (u64), routing policy tag (str: "round_robin" |
//!         "hash_iri" | "custom"), round-robin cursor (u64),
//!         LIT_SHARD_STRIDE (u64), instance dictionary length (u64),
//!         dictionary file name (str), compaction max_overlay (u64)
//!   ISEG  instance segments: count, then (file str, from u64, to u64)…
//!   ROUT  routing table: property assignments (count + (id, shard)…,
//!         sorted by id), then concept assignments, same shape
//!   OVFP / OVFC  shared overflow dictionaries (as above)
//!   LITS  shared overlay-literal table: count + literals (id = position)
//!   SHRD  per shard: layer file (str), shard gen (u64), overlay file
//!         (str)
//! session.v02              magic "SESSNv02", section QRYS: registered
//!                          continuous queries — count, then (id str,
//!                          SPARQL text str, reasoning u8, optimize u8,
//!                          merge_join u8)…  Written by
//!                          [`StreamSession::save`], replayed by resume
//! ```
//!
//! # Overlay encoding (`DELT` entries)
//!
//! ```text
//! [n_triples: u64] then per entry:
//!   [p: u64][s: u64][obj tag: u8 (0 = instance, 1 = literal)]
//!   [obj id: u64][state: u8]
//! [n_types: u64] then per entry: [s: u64][c: u64][state: u8]
//! ```
//!
//! `state` is the full [`DeltaState`]: 0 = Added, 1 = Deleted
//! (tombstone), 2 = Restored, 3 = Cancelled — the baseline-relative
//! semantics survive the round trip exactly, so a tombstone over a
//! baseline triple keeps masking it after restart and a cancelled insert
//! stays invisible.
//!
//! # Literal encoding
//!
//! `[value: str][flags: u8 (bit 0 = datatype, bit 1 = language)]`
//! followed by the optional datatype and language strings.
//!
//! # What is *not* persisted
//!
//! Runtime configuration (ingest mode, background-compaction flag, the
//! `ByIri` routing closure) and lifetime statistics are not state of the
//! data: loaders restore defaults, and
//! [`ShardedHybridStore::load_with_policy`] re-supplies a custom routing
//! hook (a "custom"-tagged manifest loaded without one falls back to
//! [`ShardPolicy::HashIri`] for *new* terms — every already-assigned
//! route is in `ROUT` and survives verbatim).
//!
//! # Follow-ons (see ROADMAP)
//!
//! Incremental overlay checkpointing (append deltas between saves
//! instead of rewriting the overlay snapshot) and per-batch group
//! commit on top of the PR 3 ingest pipeline.

use crate::continuous::{StreamSession, StreamStore};
use crate::delta::{DeltaObj, DeltaState, DeltaStore};
use crate::error::StreamError;
use crate::hybrid::{CompactionPolicy, HybridStore, OverflowDict, OverflowInstances};
use crate::shard::{ShardBase, ShardPolicy, ShardedHybridStore, LIT_SHARD_STRIDE};
use se_core::datatype::DatatypeLayer;
use se_core::layer::TripleLayer;
use se_core::typestore::RdfTypeStore;
use se_core::SuccinctEdgeStore;
use se_litemat::{Dictionaries, InstanceDictionary, LiteMatDictionary};
use se_ontology::Ontology;
use se_rdf::{Graph, Literal};
use se_sds::{
    checksum64, expect_section, read_container_header, write_container_header, write_section,
    ReadBin, Serialize, WriteBin,
};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;

/// Highest format version this build reads and the version it writes.
pub const FORMAT_VERSION: u32 = 2;

/// Root manifest file name of a persisted [`HybridStore`] directory.
pub const HYBRID_MANIFEST: &str = "hybrid.manifest";
/// Root manifest file name of a persisted [`ShardedHybridStore`] directory.
pub const SHARD_MANIFEST: &str = "store.manifest";
/// Session checkpoint file name ([`StreamSession::save`]).
pub const SESSION_FILE: &str = "session.v02";

const HYBRID_MAGIC: &[u8; 8] = b"SEHYBv02";
const SHARD_MANIFEST_MAGIC: &[u8; 8] = b"SESHMv02";
const LAYER_MAGIC: &[u8; 8] = b"SESHLv02";
const OVERLAY_MAGIC: &[u8; 8] = b"SESHOv02";
const DICTS_MAGIC: &[u8; 8] = b"SESHDv02";
const SEG_MAGIC: &[u8; 8] = b"SESHIv02";
const SESSION_MAGIC: &[u8; 8] = b"SESSNv02";

/// Allocates a process-unique generation number. Generations identify a
/// particular immutable baseline (or shard-layer) incarnation: every
/// build, load and compaction swap takes a fresh one, so two stores —
/// or two diverged clones — can never claim each other's on-disk layer
/// files.
pub(crate) fn next_generation() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// What one [`HybridStore::save`] / [`ShardedHybridStore::save`] did —
/// the observable shape of the O(delta) contract: in the steady state
/// `baseline_files_written` is 0 and only `delta_bytes` scale with the
/// overlay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaveReport {
    /// Baseline-side files (layers, frozen dictionaries) (re)written by
    /// this save — 0 when nothing compacted since the previous save.
    pub baseline_files_written: usize,
    /// Bytes of baseline-side files written.
    pub baseline_bytes: u64,
    /// Bytes written unconditionally each save: manifest, overlay
    /// snapshots and new dictionary segments — the O(delta) part.
    pub delta_bytes: u64,
    /// Overlay entries captured in this snapshot.
    pub overlay_entries: usize,
}

/// Where a [`HybridStore`] baseline generation already lives on disk.
#[derive(Debug, Clone)]
pub(crate) struct BaselineMark {
    pub(crate) dir: PathBuf,
    pub(crate) file: String,
    pub(crate) gen: u64,
    pub(crate) checksum: u64,
    pub(crate) bytes: u64,
}

/// One persisted instance-dictionary segment (ids `[from, to)`).
#[derive(Debug, Clone)]
pub(crate) struct SegmentRef {
    pub(crate) file: String,
    pub(crate) from: u64,
    pub(crate) to: u64,
}

/// Per-shard serialization output of one save: the layer file bytes (for
/// shards whose generation changed) and the overlay snapshot bytes.
type ShardSaveSlot = (Option<Vec<u8>>, Option<Vec<u8>>);

/// One shard's persisted layer file.
#[derive(Debug, Clone)]
pub(crate) struct ShardFileMark {
    pub(crate) gen: u64,
    pub(crate) file: String,
}

/// What a [`ShardedHybridStore`] already has on disk in one directory.
#[derive(Debug, Clone)]
pub(crate) struct ShardedMark {
    pub(crate) dir: PathBuf,
    pub(crate) dicts_file: String,
    pub(crate) segments: Vec<SegmentRef>,
    pub(crate) instances_persisted: u64,
    pub(crate) shard_files: Vec<ShardFileMark>,
}

// --------------------------------------------------------------- plumbing

fn lock<'a, T>(m: &'a std::sync::Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Writes `bytes` to `path` via a temp file + rename, so readers only
/// ever see complete files. Both steps run through the fault-injection
/// shim ([`crate::fault`]) — in production a transparent pass-through.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    crate::fault::write_file(&tmp, bytes)?;
    crate::fault::rename(&tmp, path)
}

/// Smallest number strictly greater than every digit run appearing in
/// any file name in `dir`. Names minted with it can never collide with
/// a file an on-disk manifest references — even one written by an
/// earlier process whose in-memory counters restarted — so overwriting
/// a still-referenced snapshot file before the new manifest lands is
/// impossible by construction.
pub(crate) fn next_file_seq(dir: &Path) -> io::Result<u64> {
    let mut max = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            let mut run: Option<u64> = None;
            for ch in name.chars() {
                if let Some(d) = ch.to_digit(10) {
                    run = Some(
                        run.unwrap_or(0)
                            .saturating_mul(10)
                            .saturating_add(u64::from(d)),
                    );
                } else if let Some(v) = run.take() {
                    max = max.max(v);
                }
            }
            if let Some(v) = run {
                max = max.max(v);
            }
        }
    }
    Ok(max.saturating_add(1))
}

/// Removes every regular file in `dir` whose name matches `stale`.
fn remove_matching(dir: &Path, stale: impl Fn(&str) -> bool) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if stale(name) {
                let _ = crate::fault::remove_file(&entry.path());
            }
        }
    }
    Ok(())
}

/// Wraps a within-section parse failure as structured corruption.
fn corrupt<E: std::fmt::Display>(section: &str) -> impl Fn(E) -> StreamError + '_ {
    move |e| StreamError::Corrupt(format!("section {section}: {e}"))
}

/// Reads a file a manifest points at; a missing file is a dangling
/// manifest reference, i.e. corruption, not plain I/O.
fn read_referenced(dir: &Path, file: &str) -> Result<Vec<u8>, StreamError> {
    std::fs::read(dir.join(file)).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            StreamError::Corrupt(format!("manifest references missing file '{file}'"))
        } else {
            StreamError::Io(e)
        }
    })
}

fn invalid<T>(msg: impl Into<String>) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg.into()))
}

/// Caps a pre-allocation driven by an untrusted on-disk length prefix:
/// the vector still grows to the real element count as parsing proceeds,
/// but a corrupted (huge) count can no longer abort the process on an
/// up-front `with_capacity` before truncation is detected.
fn capped(n: u64) -> usize {
    n.min(1 << 16) as usize
}

// ------------------------------------------------------ literal encoding

pub(crate) fn write_literal(w: &mut Vec<u8>, lit: &Literal) -> io::Result<()> {
    w.write_str(&lit.value)?;
    let flags = u8::from(lit.datatype.is_some()) | (u8::from(lit.language.is_some()) << 1);
    w.write_u8(flags)?;
    if let Some(dt) = &lit.datatype {
        w.write_str(dt)?;
    }
    if let Some(lang) = &lit.language {
        w.write_str(lang)?;
    }
    Ok(())
}

pub(crate) fn read_literal(r: &mut &[u8]) -> io::Result<Literal> {
    let value = r.read_str()?;
    let flags = r.read_u8()?;
    if flags > 3 {
        return invalid(format!("unknown literal flags {flags:#x}"));
    }
    let datatype = if flags & 1 != 0 {
        Some(r.read_str()?)
    } else {
        None
    };
    let language = if flags & 2 != 0 {
        Some(r.read_str()?)
    } else {
        None
    };
    Ok(Literal {
        value: value.into(),
        datatype: datatype.map(Into::into),
        language: language.map(Into::into),
    })
}

// ------------------------------------------------------ overlay encoding

fn state_to_u8(st: DeltaState) -> u8 {
    match st {
        DeltaState::Added => 0,
        DeltaState::Deleted => 1,
        DeltaState::Restored => 2,
        DeltaState::Cancelled => 3,
    }
}

fn state_from_u8(b: u8) -> io::Result<DeltaState> {
    Ok(match b {
        0 => DeltaState::Added,
        1 => DeltaState::Deleted,
        2 => DeltaState::Restored,
        3 => DeltaState::Cancelled,
        other => return invalid(format!("unknown delta state {other}")),
    })
}

/// Serializes the delta *entries* (not the literal table — the sharded
/// store keeps literals in a shared table outside the per-shard deltas).
fn write_delta_entries(w: &mut Vec<u8>, d: &DeltaStore) -> io::Result<()> {
    let entries: Vec<_> = d.iter().collect();
    w.write_u64(entries.len() as u64)?;
    for (p, s, o, st) in entries {
        w.write_u64(p)?;
        w.write_u64(s)?;
        match o {
            DeltaObj::Inst(id) => {
                w.write_u8(0)?;
                w.write_u64(id)?;
            }
            DeltaObj::Lit(id) => {
                w.write_u8(1)?;
                w.write_u64(id)?;
            }
        }
        w.write_u8(state_to_u8(st))?;
    }
    let types: Vec<_> = d.type_iter().collect();
    w.write_u64(types.len() as u64)?;
    for (s, c, st) in types {
        w.write_u64(s)?;
        w.write_u64(c)?;
        w.write_u8(state_to_u8(st))?;
    }
    Ok(())
}

/// Replays persisted delta entries into `d` (whose literal table, if
/// any, must already be interned so ids resolve).
fn read_delta_entries(r: &mut &[u8], d: &mut DeltaStore) -> io::Result<()> {
    let n = r.read_u64()?;
    for _ in 0..n {
        let p = r.read_u64()?;
        let s = r.read_u64()?;
        let o = match r.read_u8()? {
            0 => DeltaObj::Inst(r.read_u64()?),
            1 => DeltaObj::Lit(r.read_u64()?),
            other => return invalid(format!("unknown delta object tag {other}")),
        };
        let st = state_from_u8(r.read_u8()?)?;
        d.set(p, s, o, st);
    }
    let n = r.read_u64()?;
    for _ in 0..n {
        let s = r.read_u64()?;
        let c = r.read_u64()?;
        let st = state_from_u8(r.read_u8()?)?;
        d.set_type(s, c, st);
    }
    Ok(())
}

/// The single store's DELT payload: its own literal table + the entries.
fn hybrid_delta_bytes(d: &DeltaStore) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.write_u64(d.literal_count() as u64)
        .expect("serializing to Vec cannot fail");
    for lit in d.literals() {
        write_literal(&mut buf, lit).expect("serializing to Vec cannot fail");
    }
    write_delta_entries(&mut buf, d).expect("serializing to Vec cannot fail");
    buf
}

fn hybrid_delta_from_bytes(mut r: &[u8]) -> io::Result<DeltaStore> {
    let mut d = DeltaStore::new();
    let n = r.read_u64()?;
    for i in 0..n {
        let lit = read_literal(&mut r)?;
        let id = d.intern_literal(&lit);
        if id != i {
            return invalid("duplicate literal in persisted table");
        }
    }
    read_delta_entries(&mut r, &mut d)?;
    Ok(d)
}

// ------------------------------------------- overflow dictionary encoding

fn ovf_dict_bytes(terms: &[std::sync::Arc<str>]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.write_u64(terms.len() as u64)
        .expect("serializing to Vec cannot fail");
    for t in terms {
        buf.write_str(t).expect("serializing to Vec cannot fail");
    }
    buf
}

fn ovf_dict_from_bytes(mut r: &[u8]) -> io::Result<OverflowDict> {
    let mut d = OverflowDict::default();
    let n = r.read_u64()?;
    for _ in 0..n {
        let iri = r.read_str()?;
        d.get_or_insert(&iri);
    }
    Ok(d)
}

fn ovf_instances_bytes(d: &OverflowInstances) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.write_u64(d.base_len())
        .expect("serializing to Vec cannot fail");
    let mut rest = ovf_dict_bytes(d.terms());
    buf.append(&mut rest);
    buf
}

fn ovf_instances_from_bytes(mut r: &[u8]) -> io::Result<OverflowInstances> {
    let base_len = r.read_u64()?;
    let n = r.read_u64()?;
    let mut keys = Vec::with_capacity(capped(n));
    for _ in 0..n {
        keys.push(r.read_str()?);
    }
    Ok(OverflowInstances::from_keys(base_len, keys.into_iter()))
}

// -------------------------------------------------- HybridStore save/load

impl HybridStore {
    /// Writes the v02 snapshot of this store into `dir` — `&self`,
    /// **no compaction**, O(delta) once the baseline layer file exists
    /// (it is rewritten only after a compaction swapped the baseline).
    /// The directory is created if needed; the manifest is replaced
    /// atomically. One store per directory.
    pub fn save(&self, dir: &Path) -> Result<SaveReport, StreamError> {
        std::fs::create_dir_all(dir)?;
        let mut report = SaveReport {
            overlay_entries: self.delta.overlay_len(),
            ..SaveReport::default()
        };
        let mut guard = lock(&self.persist_mark);
        let reusable = guard
            .as_ref()
            .filter(|m| m.dir == dir && m.gen == self.generation && dir.join(&m.file).is_file())
            .cloned();
        let mark = match reusable {
            Some(m) => m,
            None => {
                // The baseline changed (or was never written here):
                // serialize the unchanged v01 bytes once, under a
                // directory-unique name so the file the current on-disk
                // manifest references is never touched.
                let mut bytes = Vec::new();
                self.base.save(&mut bytes)?;
                let file = format!("baseline-g{}.v01", next_file_seq(dir)?);
                write_file_atomic(&dir.join(&file), &bytes)?;
                report.baseline_files_written = 1;
                report.baseline_bytes = bytes.len() as u64;
                BaselineMark {
                    dir: dir.to_path_buf(),
                    checksum: checksum64(&bytes),
                    bytes: bytes.len() as u64,
                    gen: self.generation,
                    file,
                }
            }
        };

        let mut buf = Vec::new();
        write_container_header(&mut buf, HYBRID_MAGIC, FORMAT_VERSION)?;
        let mut meta = Vec::new();
        meta.write_str(&mark.file)?;
        meta.write_u64(mark.gen)?;
        meta.write_u64(mark.checksum)?;
        meta.write_u64(mark.bytes)?;
        meta.write_u64(self.policy().max_overlay as u64)?;
        meta.write_u64(self.epoch)?;
        write_section(&mut buf, b"META", &meta)?;
        write_section(&mut buf, b"OVFI", &ovf_instances_bytes(&self.ovf_instances))?;
        write_section(
            &mut buf,
            b"OVFP",
            &ovf_dict_bytes(self.ovf_properties.terms()),
        )?;
        write_section(
            &mut buf,
            b"OVFC",
            &ovf_dict_bytes(self.ovf_concepts.terms()),
        )?;
        write_section(&mut buf, b"DELT", &hybrid_delta_bytes(&self.delta))?;
        write_file_atomic(&dir.join(HYBRID_MANIFEST), &buf)?;
        report.delta_bytes = buf.len() as u64;
        // Garbage only after the new manifest landed: a crash anywhere
        // earlier leaves the previous manifest + its baseline intact.
        remove_matching(dir, |n| {
            n.starts_with("baseline-g") && n.ends_with(".v01") && n != mark.file
        })?;
        // WAL maintenance, also only after the rename: the new manifest
        // covers every record up to `self.epoch`, so sealed segments at
        // or below it are dead weight.
        if let Some(wal) = lock(&self.wal).as_mut() {
            if wal.dir() == dir {
                wal.checkpoint(self.epoch)?;
            }
        }
        *guard = Some(mark);
        Ok(report)
    }

    /// Loads a persisted store: a v02 directory written by
    /// [`HybridStore::save`], or — for backward compatibility — a single
    /// v01 file written by the deprecated compact-then-dump path (which
    /// loads with an empty overlay). Ids are stable across the round
    /// trip; corruption surfaces as [`StreamError::Corrupt`] /
    /// [`StreamError::UnsupportedVersion`], never a panic.
    pub fn load(path: &Path, ontology: &Ontology) -> Result<Self, StreamError> {
        if path.is_file() {
            return Self::load_from_file(path, ontology.clone());
        }
        let manifest = std::fs::read(path.join(HYBRID_MANIFEST))?;
        let mut r = manifest.as_slice();
        read_container_header(&mut r, HYBRID_MAGIC, FORMAT_VERSION)?;

        let meta = expect_section(&mut r, b"META")?;
        let mut m = meta.as_slice();
        let (file, checksum, bytes_len, max_overlay, epoch) = (|| -> io::Result<_> {
            let file = m.read_str()?;
            let _gen_at_save = m.read_u64()?;
            let checksum = m.read_u64()?;
            let bytes_len = m.read_u64()?;
            let max_overlay = m.read_u64()?;
            // Epoch was appended to META later; files written before it
            // simply restart the epoch counter at zero.
            let epoch = if m.is_empty() { 0 } else { m.read_u64()? };
            Ok((file, checksum, bytes_len, max_overlay, epoch))
        })()
        .map_err(corrupt("META"))?;

        let base_bytes = read_referenced(path, &file)?;
        if base_bytes.len() as u64 != bytes_len || checksum64(&base_bytes) != checksum {
            return Err(StreamError::Corrupt(format!(
                "baseline file '{file}' does not match the manifest checksum"
            )));
        }
        let base = SuccinctEdgeStore::load(&mut base_bytes.as_slice())
            .map_err(|e| StreamError::Corrupt(format!("baseline file '{file}': {e}")))?;

        let ovf_instances =
            ovf_instances_from_bytes(&expect_section(&mut r, b"OVFI")?).map_err(corrupt("OVFI"))?;
        if ovf_instances.base_len() != base.dictionaries().instances.len() as u64 {
            return Err(StreamError::Corrupt(format!(
                "overflow base_len {} disagrees with the baseline instance dictionary ({})",
                ovf_instances.base_len(),
                base.dictionaries().instances.len()
            )));
        }
        let ovf_properties =
            ovf_dict_from_bytes(&expect_section(&mut r, b"OVFP")?).map_err(corrupt("OVFP"))?;
        let ovf_concepts =
            ovf_dict_from_bytes(&expect_section(&mut r, b"OVFC")?).map_err(corrupt("OVFC"))?;
        let delta =
            hybrid_delta_from_bytes(&expect_section(&mut r, b"DELT")?).map_err(corrupt("DELT"))?;

        let generation = next_generation();
        let mark = BaselineMark {
            dir: path.to_path_buf(),
            file,
            gen: generation,
            checksum,
            bytes: bytes_len,
        };
        let mut store = HybridStore::from_loaded(
            base,
            ontology.clone(),
            delta,
            ovf_instances,
            ovf_properties,
            ovf_concepts,
            CompactionPolicy {
                max_overlay: max_overlay as usize,
            },
            generation,
            epoch,
            Some(mark),
        );
        replay_wal(&mut store, path, epoch, |s, ins, del| {
            s.apply(ins, del).map(|_| ())
        })?;
        Ok(store)
    }
}

/// Replays the WAL tail past `manifest_epoch` into a freshly loaded
/// store. Each record is one batch whose net delta replays through the
/// ordinary `apply` — the epoch counter advances exactly to the last
/// record's epoch because [`crate::wal::recover`] verified the records
/// are consecutive. The store has no WAL attached at this point, so
/// replaying does not re-append.
fn replay_wal<S>(
    store: &mut S,
    dir: &Path,
    manifest_epoch: u64,
    mut apply: impl FnMut(&mut S, &Graph, &Graph) -> Result<(), StreamError>,
) -> Result<(), StreamError> {
    for rec in crate::wal::recover(dir, manifest_epoch)? {
        apply(
            store,
            &Graph::from_triples(rec.delta.added),
            &Graph::from_triples(rec.delta.removed),
        )?;
    }
    Ok(())
}

// ------------------------------------------- sharded store file encoding

/// One shard's layer file: the succinct layers, self-checksummed.
fn layer_file_bytes(base: &ShardBase) -> Vec<u8> {
    let mut buf = Vec::new();
    write_container_header(&mut buf, LAYER_MAGIC, FORMAT_VERSION)
        .expect("serializing to Vec cannot fail");
    write_section(&mut buf, b"OBJL", &base.objects.to_bytes())
        .expect("serializing to Vec cannot fail");
    write_section(&mut buf, b"DATL", &base.datatypes.to_bytes())
        .expect("serializing to Vec cannot fail");
    let mut types = Vec::new();
    types
        .write_u64(base.types.len() as u64)
        .expect("serializing to Vec cannot fail");
    for (s, c) in base.types.iter() {
        types.write_u64(s).expect("serializing to Vec cannot fail");
        types.write_u64(c).expect("serializing to Vec cannot fail");
    }
    write_section(&mut buf, b"TYPS", &types).expect("serializing to Vec cannot fail");
    buf
}

fn layer_file_parse(bytes: &[u8]) -> Result<ShardBase, StreamError> {
    let mut r = bytes;
    read_container_header(&mut r, LAYER_MAGIC, FORMAT_VERSION)?;
    let objects =
        TripleLayer::from_bytes(&expect_section(&mut r, b"OBJL")?).map_err(corrupt("OBJL"))?;
    let datatypes =
        DatatypeLayer::from_bytes(&expect_section(&mut r, b"DATL")?).map_err(corrupt("DATL"))?;
    let payload = expect_section(&mut r, b"TYPS")?;
    let mut t = payload.as_slice();
    let types = (|| -> io::Result<RdfTypeStore> {
        let n = t.read_u64()?;
        let mut store = RdfTypeStore::new();
        for _ in 0..n {
            let s = t.read_u64()?;
            let c = t.read_u64()?;
            store.insert(s, c);
        }
        Ok(store)
    })()
    .map_err(corrupt("TYPS"))?;
    Ok(ShardBase {
        objects,
        datatypes,
        types,
    })
}

/// One shard's overlay file: raw delta entries (shared-table literal ids).
fn overlay_file_bytes(delta: &DeltaStore) -> Vec<u8> {
    let mut buf = Vec::new();
    write_container_header(&mut buf, OVERLAY_MAGIC, FORMAT_VERSION)
        .expect("serializing to Vec cannot fail");
    let mut payload = Vec::new();
    write_delta_entries(&mut payload, delta).expect("serializing to Vec cannot fail");
    write_section(&mut buf, b"DELT", &payload).expect("serializing to Vec cannot fail");
    buf
}

fn overlay_file_parse(bytes: &[u8]) -> Result<DeltaStore, StreamError> {
    let mut r = bytes;
    read_container_header(&mut r, OVERLAY_MAGIC, FORMAT_VERSION)?;
    let payload = expect_section(&mut r, b"DELT")?;
    let mut d = DeltaStore::new();
    read_delta_entries(&mut payload.as_slice(), &mut d).map_err(corrupt("DELT"))?;
    Ok(d)
}

/// The frozen global LiteMat dictionaries (written once per store).
fn dicts_file_bytes(dicts: &Dictionaries) -> Vec<u8> {
    let mut buf = Vec::new();
    write_container_header(&mut buf, DICTS_MAGIC, FORMAT_VERSION)
        .expect("serializing to Vec cannot fail");
    let mut conc = Vec::new();
    dicts
        .concepts
        .serialize(&mut conc)
        .expect("serializing to Vec cannot fail");
    write_section(&mut buf, b"CONC", &conc).expect("serializing to Vec cannot fail");
    let mut prop = Vec::new();
    dicts
        .properties
        .serialize(&mut prop)
        .expect("serializing to Vec cannot fail");
    write_section(&mut buf, b"PROP", &prop).expect("serializing to Vec cannot fail");
    buf
}

fn dicts_file_parse(bytes: &[u8]) -> Result<(LiteMatDictionary, LiteMatDictionary), StreamError> {
    let mut r = bytes;
    read_container_header(&mut r, DICTS_MAGIC, FORMAT_VERSION)?;
    let concepts = LiteMatDictionary::deserialize(&mut expect_section(&mut r, b"CONC")?.as_slice())
        .map_err(corrupt("CONC"))?;
    let properties =
        LiteMatDictionary::deserialize(&mut expect_section(&mut r, b"PROP")?.as_slice())
            .map_err(corrupt("PROP"))?;
    Ok((concepts, properties))
}

/// One append-only instance-dictionary segment covering ids `[from, to)`.
fn instance_segment_bytes(dict: &InstanceDictionary, from: u64, to: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_container_header(&mut buf, SEG_MAGIC, FORMAT_VERSION)
        .expect("serializing to Vec cannot fail");
    let mut payload = Vec::new();
    payload
        .write_u64(to - from)
        .expect("serializing to Vec cannot fail");
    for id in from..to {
        payload
            .write_str(dict.term(id).expect("id below dictionary length"))
            .expect("serializing to Vec cannot fail");
        payload
            .write_u64(dict.count(id))
            .expect("serializing to Vec cannot fail");
    }
    write_section(&mut buf, b"INST", &payload).expect("serializing to Vec cannot fail");
    buf
}

/// Replays one segment into `dict`, which must currently end exactly at
/// the segment's `from` (denseness check happens at the call site).
fn instance_segment_replay(bytes: &[u8], dict: &mut InstanceDictionary) -> Result<(), StreamError> {
    let mut r = bytes;
    read_container_header(&mut r, SEG_MAGIC, FORMAT_VERSION)?;
    let payload = expect_section(&mut r, b"INST")?;
    let mut p = payload.as_slice();
    (|| -> io::Result<()> {
        let n = p.read_u64()?;
        for _ in 0..n {
            let term = p.read_str()?;
            let count = p.read_u64()?;
            let before = dict.len() as u64;
            let id = dict.get_or_insert(&term);
            if id != before {
                return invalid(format!("duplicate instance key '{term}' across segments"));
            }
            dict.set_count(id, count);
        }
        Ok(())
    })()
    .map_err(corrupt("INST"))
}

fn routing_bytes(assignments: &HashMap<u64, usize>) -> Vec<u8> {
    let mut entries: Vec<(u64, usize)> = assignments.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    let mut buf = Vec::new();
    buf.write_u64(entries.len() as u64)
        .expect("serializing to Vec cannot fail");
    for (id, shard) in entries {
        buf.write_u64(id).expect("serializing to Vec cannot fail");
        buf.write_u64(shard as u64)
            .expect("serializing to Vec cannot fail");
    }
    buf
}

fn routing_from_bytes(r: &mut &[u8], n_shards: usize) -> io::Result<HashMap<u64, usize>> {
    let n = r.read_u64()?;
    let mut map = HashMap::with_capacity(capped(n));
    for _ in 0..n {
        let id = r.read_u64()?;
        let shard = r.read_u64()? as usize;
        if shard >= n_shards {
            return invalid(format!("route to shard {shard} of {n_shards}"));
        }
        map.insert(id, shard);
    }
    Ok(map)
}

// ------------------------------------- ShardedHybridStore save/load

impl ShardedHybridStore {
    /// Writes the v02 sharded manifest snapshot into `dir` — `&self`, no
    /// compaction, no blocking on in-flight background rebuilds (the
    /// snapshot captures the current layers + overlay, which is a
    /// consistent view by construction). Layer files, the frozen
    /// dictionary file and instance-dictionary history are written only
    /// when they changed; per-shard layer serialization for shards that
    /// *did* compact is fanned out across the [`ShardRuntime`] workers
    /// when the pool is running. One store per directory.
    ///
    /// [`ShardRuntime`]: crate::runtime::ShardRuntime
    pub fn save(&self, dir: &Path) -> Result<SaveReport, StreamError> {
        std::fs::create_dir_all(dir)?;
        let mut report = SaveReport {
            overlay_entries: self.overlay_len(),
            ..SaveReport::default()
        };
        let mut guard = lock(&self.persist_mark);
        let prev = guard.as_ref().filter(|m| m.dir == dir).cloned();
        // Directory-unique sequence for every file minted by this save:
        // names can never collide with anything an on-disk manifest
        // (possibly from an earlier process) still references, so no
        // referenced file is overwritten before the new manifest lands.
        let save_seq = next_file_seq(dir)?;

        // 1. Frozen LiteMat dictionaries: write-once per directory. The
        //    prior mark's file name stays authoritative (the dictionaries
        //    never change after build), so a load→save cycle does not
        //    rewrite them — or the instance history below.
        let (dicts_file, have_dicts) = match &prev {
            Some(m) if dir.join(&m.dicts_file).is_file() => (m.dicts_file.clone(), true),
            _ => (format!("dicts-g{save_seq}.bin"), false),
        };
        if !have_dicts {
            let bytes = dicts_file_bytes(&self.dicts);
            write_file_atomic(&dir.join(&dicts_file), &bytes)?;
            report.baseline_files_written += 1;
            report.baseline_bytes += bytes.len() as u64;
        }

        // 2. Instance dictionary: append only the ids interned since the
        //    last save to this directory.
        let inst_len = self.dicts.instances.len() as u64;
        let (mut segments, persisted) = match (&prev, have_dicts) {
            (Some(m), true) => (m.segments.clone(), m.instances_persisted),
            _ => (Vec::new(), 0),
        };
        if inst_len > persisted {
            let file = format!("instances-{persisted}-{inst_len}.seg");
            let bytes = instance_segment_bytes(&self.dicts.instances, persisted, inst_len);
            write_file_atomic(&dir.join(&file), &bytes)?;
            report.delta_bytes += bytes.len() as u64;
            segments.push(SegmentRef {
                file,
                from: persisted,
                to: inst_len,
            });
        }

        // 3. Per-shard layer + overlay files. Layer files only for shards
        //    whose generation changed; serialization fans out across the
        //    persistent workers when the pool is running.
        let n = self.shards.len();
        let prev_shards: Vec<Option<ShardFileMark>> = match &prev {
            Some(m) if m.shard_files.len() == n => {
                m.shard_files.iter().cloned().map(Some).collect()
            }
            _ => vec![None; n],
        };
        let need_layer: Vec<bool> = (0..n)
            .map(|i| {
                !prev_shards[i]
                    .as_ref()
                    .is_some_and(|m| m.gen == self.shards[i].gen && dir.join(&m.file).is_file())
            })
            .collect();
        let mut slots: Vec<ShardSaveSlot> = (0..n).map(|_| (None, None)).collect();
        {
            let shards = &self.shards;
            let need = &need_layer;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        if need[i] {
                            slot.0 = Some(layer_file_bytes(&shards[i].base));
                        }
                        slot.1 = Some(overlay_file_bytes(&shards[i].delta));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            match self.runtime() {
                Some(rt) => {
                    if let Err(msg) = rt.run_scoped(tasks) {
                        // Serialization is pure; a panic here is a bug and
                        // mirrors the scoped-evaluation contract.
                        panic!("persist worker panicked: {msg}");
                    }
                }
                None => {
                    for task in tasks {
                        task();
                    }
                }
            }
        }
        let mut shard_files = Vec::with_capacity(n);
        let mut overlay_files = Vec::with_capacity(n);
        for (i, (layer, overlay)) in slots.into_iter().enumerate() {
            let mark = match layer {
                Some(bytes) => {
                    let file = format!("shard-{i}-g{save_seq}.layers");
                    write_file_atomic(&dir.join(&file), &bytes)?;
                    report.baseline_files_written += 1;
                    report.baseline_bytes += bytes.len() as u64;
                    ShardFileMark {
                        gen: self.shards[i].gen,
                        file,
                    }
                }
                None => prev_shards[i].clone().expect("reuse implies a prior mark"),
            };
            let overlay = overlay.expect("every task fills its overlay slot");
            let ov_file = format!("shard-{i}-s{save_seq}.overlay");
            write_file_atomic(&dir.join(&ov_file), &overlay)?;
            report.delta_bytes += overlay.len() as u64;
            shard_files.push(mark);
            overlay_files.push(ov_file);
        }

        // 4. Root manifest, atomically replaced last: a crash anywhere
        //    above leaves the previous manifest + its files intact.
        let mut buf = Vec::new();
        write_container_header(&mut buf, SHARD_MANIFEST_MAGIC, FORMAT_VERSION)?;
        let mut meta = Vec::new();
        meta.write_u64(n as u64)?;
        meta.write_str(self.routes.policy.tag())?;
        meta.write_u64(self.routes.next as u64)?;
        meta.write_u64(LIT_SHARD_STRIDE)?;
        meta.write_u64(inst_len)?;
        meta.write_str(&dicts_file)?;
        meta.write_u64(self.policy().max_overlay as u64)?;
        meta.write_u64(self.epoch)?;
        write_section(&mut buf, b"META", &meta)?;
        let mut iseg = Vec::new();
        iseg.write_u64(segments.len() as u64)?;
        for seg in &segments {
            iseg.write_str(&seg.file)?;
            iseg.write_u64(seg.from)?;
            iseg.write_u64(seg.to)?;
        }
        write_section(&mut buf, b"ISEG", &iseg)?;
        let mut rout = routing_bytes(&self.routes.props);
        rout.append(&mut routing_bytes(&self.routes.concepts));
        write_section(&mut buf, b"ROUT", &rout)?;
        write_section(
            &mut buf,
            b"OVFP",
            &ovf_dict_bytes(self.ovf_properties.terms()),
        )?;
        write_section(
            &mut buf,
            b"OVFC",
            &ovf_dict_bytes(self.ovf_concepts.terms()),
        )?;
        let mut lits = Vec::new();
        lits.write_u64(self.literals.literals.len() as u64)?;
        for lit in &self.literals.literals {
            write_literal(&mut lits, lit)?;
        }
        write_section(&mut buf, b"LITS", &lits)?;
        let mut shrd = Vec::new();
        for (mark, ov) in shard_files.iter().zip(&overlay_files) {
            shrd.write_str(&mark.file)?;
            shrd.write_u64(mark.gen)?;
            shrd.write_str(ov)?;
        }
        write_section(&mut buf, b"SHRD", &shrd)?;
        write_file_atomic(&dir.join(SHARD_MANIFEST), &buf)?;
        report.delta_bytes += buf.len() as u64;

        // 5. Garbage: files the new manifest no longer references.
        for (i, (mark, ov)) in shard_files.iter().zip(&overlay_files).enumerate() {
            let layer_prefix = format!("shard-{i}-g");
            let overlay_prefix = format!("shard-{i}-s");
            remove_matching(dir, |name| {
                (name.starts_with(&layer_prefix) && name.ends_with(".layers") && name != mark.file)
                    || (name.starts_with(&overlay_prefix)
                        && name.ends_with(".overlay")
                        && name != ov)
            })?;
        }
        let keep: std::collections::HashSet<&str> =
            segments.iter().map(|s| s.file.as_str()).collect();
        remove_matching(dir, |name| {
            name.starts_with("instances-") && name.ends_with(".seg") && !keep.contains(name)
        })?;
        remove_matching(dir, |name| {
            name.starts_with("dicts-g") && name.ends_with(".bin") && name != dicts_file
        })?;
        // WAL maintenance, also only after the rename: the new manifest
        // covers every record up to `self.epoch`.
        if let Some(wal) = lock(&self.wal).as_mut() {
            if wal.dir() == dir {
                wal.checkpoint(self.epoch)?;
            }
        }

        *guard = Some(ShardedMark {
            dir: dir.to_path_buf(),
            dicts_file,
            segments,
            instances_persisted: inst_len,
            shard_files,
        });
        Ok(report)
    }

    /// Loads a persisted sharded store, restoring the persisted routing
    /// policy tag ("custom" falls back to [`ShardPolicy::HashIri`] for
    /// terms not yet routed — every persisted assignment survives
    /// verbatim). Use [`ShardedHybridStore::load_with_policy`] to
    /// re-supply a `ByIri` hook.
    pub fn load(dir: &Path, ontology: &Ontology) -> Result<Self, StreamError> {
        Self::load_with_policy(dir, ontology, None)
    }

    /// Loads a persisted sharded store; `policy`, when given, replaces
    /// the persisted policy tag for routing terms first seen after the
    /// restart (already-assigned routes always come from the manifest).
    pub fn load_with_policy(
        dir: &Path,
        ontology: &Ontology,
        policy: Option<ShardPolicy>,
    ) -> Result<Self, StreamError> {
        let manifest = std::fs::read(dir.join(SHARD_MANIFEST))?;
        let mut r = manifest.as_slice();
        read_container_header(&mut r, SHARD_MANIFEST_MAGIC, FORMAT_VERSION)?;

        let meta = expect_section(&mut r, b"META")?;
        let mut m = meta.as_slice();
        let (n_shards, tag, rr_next, stride, inst_len, dicts_file, max_overlay, epoch) =
            (|| -> io::Result<_> {
                let n = m.read_u64()? as usize;
                let tag = m.read_str()?;
                let next = m.read_u64()? as usize;
                let stride = m.read_u64()?;
                let inst_len = m.read_u64()?;
                let dicts_file = m.read_str()?;
                let max_overlay = m.read_u64()? as usize;
                // Epoch was appended to META later; manifests written
                // before it restart the epoch counter at zero.
                let epoch = if m.is_empty() { 0 } else { m.read_u64()? };
                Ok((
                    n,
                    tag,
                    next,
                    stride,
                    inst_len,
                    dicts_file,
                    max_overlay,
                    epoch,
                ))
            })()
            .map_err(corrupt("META"))?;
        if n_shards == 0 {
            return Err(StreamError::Corrupt("manifest declares zero shards".into()));
        }
        // n_shards drives `with_capacity` pre-allocations below and the
        // worker-fleet size after the load: an untrusted huge count is
        // corruption, not a request for a million threads.
        if n_shards > crate::shard::MAX_SHARDS {
            return Err(StreamError::Corrupt(format!(
                "manifest declares {n_shards} shards (this build caps at {})",
                crate::shard::MAX_SHARDS
            )));
        }
        if stride != LIT_SHARD_STRIDE {
            return Err(StreamError::Corrupt(format!(
                "literal shard stride {stride:#x} differs from this build's {LIT_SHARD_STRIDE:#x}"
            )));
        }
        let resolved_policy = match policy {
            Some(p) => p,
            None => match tag.as_str() {
                "round_robin" => ShardPolicy::RoundRobin,
                // A custom hook cannot be persisted; new terms fall back
                // to the stable hash (documented on `load`).
                "hash_iri" | "custom" => ShardPolicy::HashIri,
                other => {
                    return Err(StreamError::Corrupt(format!(
                        "unknown routing policy tag '{other}'"
                    )))
                }
            },
        };

        let iseg = expect_section(&mut r, b"ISEG")?;
        let mut s = iseg.as_slice();
        let segments = (|| -> io::Result<Vec<SegmentRef>> {
            let n = s.read_u64()?;
            let mut segs = Vec::with_capacity(capped(n));
            for _ in 0..n {
                segs.push(SegmentRef {
                    file: s.read_str()?,
                    from: s.read_u64()?,
                    to: s.read_u64()?,
                });
            }
            Ok(segs)
        })()
        .map_err(corrupt("ISEG"))?;

        let rout = expect_section(&mut r, b"ROUT")?;
        let mut rt = rout.as_slice();
        let props = routing_from_bytes(&mut rt, n_shards).map_err(corrupt("ROUT"))?;
        let concepts = routing_from_bytes(&mut rt, n_shards).map_err(corrupt("ROUT"))?;
        let ovf_properties =
            ovf_dict_from_bytes(&expect_section(&mut r, b"OVFP")?).map_err(corrupt("OVFP"))?;
        let ovf_concepts =
            ovf_dict_from_bytes(&expect_section(&mut r, b"OVFC")?).map_err(corrupt("OVFC"))?;

        let lits = expect_section(&mut r, b"LITS")?;
        let mut l = lits.as_slice();
        let literals = (|| -> io::Result<crate::shard::LiteralTable> {
            let n = l.read_u64()?;
            let mut table = crate::shard::LiteralTable::default();
            for i in 0..n {
                let lit = read_literal(&mut l)?;
                if table.intern(&lit) != i {
                    return invalid("duplicate literal in persisted table");
                }
            }
            Ok(table)
        })()
        .map_err(corrupt("LITS"))?;

        let shrd = expect_section(&mut r, b"SHRD")?;
        let mut sh = shrd.as_slice();
        let shard_refs = (|| -> io::Result<Vec<(String, u64, String)>> {
            let mut refs = Vec::with_capacity(n_shards);
            for _ in 0..n_shards {
                refs.push((sh.read_str()?, sh.read_u64()?, sh.read_str()?));
            }
            Ok(refs)
        })()
        .map_err(corrupt("SHRD"))?;

        // Rebuild the dictionaries: frozen LiteMat codes + the instance
        // history replayed in order (ids are positions — stable).
        let (concepts_dict, properties_dict) =
            dicts_file_parse(&read_referenced(dir, &dicts_file)?)?;
        let mut instances = InstanceDictionary::new();
        for seg in &segments {
            if seg.from != instances.len() as u64 {
                return Err(StreamError::Corrupt(format!(
                    "instance segment '{}' starts at {} but the dictionary has {} entries",
                    seg.file,
                    seg.from,
                    instances.len()
                )));
            }
            instance_segment_replay(&read_referenced(dir, &seg.file)?, &mut instances)?;
            if instances.len() as u64 != seg.to {
                return Err(StreamError::Corrupt(format!(
                    "instance segment '{}' ends at {} entries, expected {}",
                    seg.file,
                    instances.len(),
                    seg.to
                )));
            }
        }
        if instances.len() as u64 != inst_len {
            return Err(StreamError::Corrupt(format!(
                "instance dictionary has {} entries after replay, manifest declares {inst_len}",
                instances.len()
            )));
        }
        let dicts = Dictionaries {
            concepts: concepts_dict,
            properties: properties_dict,
            instances,
        };

        let mut routes = crate::shard::RoutingTable::new(n_shards, resolved_policy);
        routes.next = rr_next;
        routes.props = props;
        routes.concepts = concepts;

        let mut shards = Vec::with_capacity(n_shards);
        let mut shard_marks = Vec::with_capacity(n_shards);
        for (layer_file, _gen_at_save, overlay_file) in &shard_refs {
            let base = layer_file_parse(&read_referenced(dir, layer_file)?)?;
            let delta = overlay_file_parse(&read_referenced(dir, overlay_file)?)?;
            let gen = next_generation();
            shards.push(ShardedHybridStore::shard_from_loaded(base, delta, gen));
            shard_marks.push(ShardFileMark {
                gen,
                file: layer_file.clone(),
            });
        }

        let mark = ShardedMark {
            dir: dir.to_path_buf(),
            dicts_file,
            segments,
            instances_persisted: inst_len,
            shard_files: shard_marks,
        };
        let mut store = ShardedHybridStore::from_loaded_parts(
            dicts,
            ontology.clone(),
            shards,
            routes,
            ovf_properties,
            ovf_concepts,
            literals,
            CompactionPolicy { max_overlay },
            epoch,
            Some(mark),
        );
        replay_wal(&mut store, dir, epoch, |s, ins, del| {
            s.apply(ins, del).map(|_| ())
        })?;
        Ok(store)
    }
}

// --------------------------------------------------------- trait + session

/// The persistence seam shared by both engines: v02 `save` is `&self`,
/// O(delta) and compaction-free; `load` restores the store with every
/// identifier stable. [`StreamSession`] uses it for whole-session
/// checkpoints.
pub trait PersistentStore: Sized {
    /// Writes the store's v02 snapshot into `dir`.
    fn save(&self, dir: &Path) -> Result<SaveReport, StreamError>;
    /// Restores a store saved by [`PersistentStore::save`].
    fn load(dir: &Path, ontology: &Ontology) -> Result<Self, StreamError>;
}

impl PersistentStore for HybridStore {
    fn save(&self, dir: &Path) -> Result<SaveReport, StreamError> {
        HybridStore::save(self, dir)
    }

    fn load(dir: &Path, ontology: &Ontology) -> Result<Self, StreamError> {
        HybridStore::load(dir, ontology)
    }
}

impl PersistentStore for ShardedHybridStore {
    fn save(&self, dir: &Path) -> Result<SaveReport, StreamError> {
        ShardedHybridStore::save(self, dir)
    }

    fn load(dir: &Path, ontology: &Ontology) -> Result<Self, StreamError> {
        ShardedHybridStore::load(dir, ontology)
    }
}

impl<S: StreamStore + PersistentStore> StreamSession<S> {
    /// Checkpoints the whole session: the store's v02 snapshot plus the
    /// registered continuous queries (`session.v02`), so a restarted
    /// process resumes the same queries over the same state.
    pub fn save(&self, dir: &Path) -> Result<SaveReport, StreamError> {
        let report = self.store().save(dir)?;
        let mut buf = Vec::new();
        write_container_header(&mut buf, SESSION_MAGIC, FORMAT_VERSION)?;
        let mut qrys = Vec::new();
        qrys.write_u64(self.registry().len() as u64)?;
        for q in self.registry().iter() {
            qrys.write_str(&q.id)?;
            qrys.write_str(&q.text)?;
            qrys.write_u8(u8::from(q.options.reasoning))?;
            qrys.write_u8(u8::from(q.options.optimize))?;
            qrys.write_u8(u8::from(q.options.merge_join))?;
        }
        write_section(&mut buf, b"QRYS", &qrys)?;
        write_file_atomic(&dir.join(SESSION_FILE), &buf)?;
        Ok(report)
    }

    /// Restores a checkpointed session: loads the store, then re-parses
    /// and re-registers every persisted continuous query, so the next
    /// [`apply_batch`](StreamSession::apply_batch) evaluates them against
    /// the reloaded state exactly as the pre-restart session would have.
    pub fn resume(dir: &Path, ontology: &Ontology) -> Result<Self, StreamError> {
        let store = S::load(dir, ontology)?;
        Self::resume_with_store(dir, store)
    }

    /// Like [`StreamSession::resume`], but over a store the caller
    /// already loaded — the hook for
    /// [`ShardedHybridStore::load_with_policy`].
    pub fn resume_with_store(dir: &Path, store: S) -> Result<Self, StreamError> {
        let bytes = std::fs::read(dir.join(SESSION_FILE))?;
        let mut r = bytes.as_slice();
        read_container_header(&mut r, SESSION_MAGIC, FORMAT_VERSION)?;
        let qrys = expect_section(&mut r, b"QRYS")?;
        let mut q = qrys.as_slice();
        let queries = (|| -> io::Result<Vec<(String, String, se_sparql::QueryOptions)>> {
            let n = q.read_u64()?;
            let mut out = Vec::with_capacity(capped(n));
            for _ in 0..n {
                let id = q.read_str()?;
                let text = q.read_str()?;
                let options = se_sparql::QueryOptions {
                    reasoning: q.read_u8()? != 0,
                    optimize: q.read_u8()? != 0,
                    merge_join: q.read_u8()? != 0,
                };
                out.push((id, text, options));
            }
            Ok(out)
        })()
        .map_err(corrupt("QRYS"))?;
        let mut session = StreamSession::new(store);
        for (id, text, options) in queries {
            session.register_query(&id, &text, options).map_err(|e| {
                StreamError::Corrupt(format!("persisted query '{id}' no longer parses: {e}"))
            })?;
        }
        Ok(session)
    }
}
