//! Write-ahead overlay log: per-batch durability between v02 snapshots.
//!
//! v02 persistence (see [`crate::persist`]) made `save` O(delta), but
//! durability stayed checkpoint-granular — every batch applied since the
//! last `save` died with the process. The WAL closes that gap: once
//! attached (`HybridStore::attach_wal` / `ShardedHybridStore::attach_wal`),
//! every successful `apply` appends one *record* — the batch's net
//! [`BatchDelta`] plus the post-apply epoch — to a segmented, checksummed
//! log in the same directory as the snapshot, and recovery becomes
//! *last manifest + replay tail*.
//!
//! # On-disk format
//!
//! A segment file `wal-<seq>.seg` is a standard v02 container:
//!
//! ```text
//! [magic "SEWALSEG"][version: u32 LE]          (12-byte header)
//! [section "WREC"]*                            (one per batch)
//! ```
//!
//! each `WREC` section framed and FNV-checksummed exactly like every
//! other v02 section ([`se_sds::write_section`]), with payload:
//!
//! ```text
//! epoch: u64                                   (epoch *after* the batch)
//! added count: u64, then triples               (term space)
//! removed count: u64, then triples
//! term := tag u8 (0 iri | 1 blank | 2 literal) + strings
//! ```
//!
//! Segment sequence numbers come from the same collision-free counter as
//! every other persistence file ([`crate::persist`]'s `next_file_seq`),
//! so a segment can never collide with a snapshot file.
//!
//! # Sync policy, rotation, truncation
//!
//! [`SyncPolicy`] picks the durability/latency trade: `EveryBatch`
//! fsyncs after each record (an `Ok` from `apply` means the batch is on
//! disk — what the server's group-commit ack relies on), `EveryN(n)`
//! fsyncs every n records (bounded loss window), `OsBuffered` never
//! fsyncs explicitly (crash loss up to the OS flush interval; process
//! *exit* is still safe because the file is written, not buffered in
//! user space). A segment is sealed once it exceeds
//! [`WalConfig::segment_bytes`] (and at every checkpoint); `save`
//! truncates sealed segments whose records are all covered by the
//! manifest it just wrote — the active segment is never truncated.
//!
//! # Recovery and the torn-tail rule
//!
//! [`recover`] scans the segments in sequence order and returns the
//! records with epochs past the manifest's, verifying they are
//! *consecutive* from `manifest_epoch + 1` (a gap means a segment the
//! manifest depends on was lost — corruption, not recoverable). Damage
//! is classified by position:
//!
//! * a truncated frame, or a checksum mismatch on the **physically
//!   final** frame of the **last** segment, is a *torn tail* — the crash
//!   interrupted the last append. The file is truncated at the last
//!   complete record and recovery succeeds with the prefix;
//! * anything else — a bad frame *before* the tail, damage in an
//!   earlier segment, a foreign section tag — is corruption and fails
//!   with [`StreamError::Corrupt`]: silently dropping acknowledged
//!   records would be worse than refusing to load.

use crate::error::StreamError;
use crate::fault;
use crate::hybrid::BatchDelta;
use crate::persist::{next_file_seq, read_literal, write_literal};
use se_rdf::{Term, Triple};
use se_sds::{
    read_section_from, write_container_header, write_section, ContainerError, ReadBin, WriteBin,
};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"SEWALSEG";
/// Current segment format version.
pub const WAL_VERSION: u32 = 1;
/// Section tag of one appended batch record.
const REC_TAG: &[u8; 4] = b"WREC";
/// Cap for length-prefixed pre-allocations while decoding (the counts
/// are untrusted on-disk data; the vectors still grow to the real size).
const PREALLOC_CAP: u64 = 1 << 16;

/// When appended records are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every record: an `Ok` apply is durable. The default.
    EveryBatch,
    /// Fsync every `n` records: at most `n - 1` acked batches can be
    /// lost to a crash (none to a clean process exit).
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    OsBuffered,
}

/// Tuning knobs for an attached WAL.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Sync policy for appended records.
    pub sync: SyncPolicy,
    /// Seal the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::EveryBatch,
            segment_bytes: 4 << 20,
        }
    }
}

/// One recovered batch record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The store epoch after this batch was applied.
    pub epoch: u64,
    /// The batch's net visibility changes.
    pub delta: BatchDelta,
}

/// Operator-visible durability state of a store's WAL (surfaced through
/// `StreamStats` and the server STATS payload): whether a log is
/// attached, whether it is poisoned (a failed append rejects all later
/// appends until a checkpoint heals it), and how many appends have
/// failed since attach — including rejections by an already-poisoned
/// log, so the counter keeps climbing while degradation persists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalHealth {
    /// A WAL is attached to the store.
    pub attached: bool,
    /// The log rejects appends until a successful checkpoint.
    pub poisoned: bool,
    /// Appends that returned an error (initial failures and poisoned
    /// rejections alike).
    pub appends_failed: u64,
}

#[derive(Debug)]
struct ActiveSegment {
    file: fs::File,
    path: PathBuf,
    bytes: u64,
    /// Epoch of the last record appended, `None` while empty.
    last: Option<u64>,
}

#[derive(Debug)]
struct SealedSegment {
    path: PathBuf,
    last: Option<u64>,
}

/// An open, appendable write-ahead log over one store directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    active: Option<ActiveSegment>,
    sealed: Vec<SealedSegment>,
    /// Records appended since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced: u64,
    /// Set when an append fails: the active segment's tail is in an
    /// unknown state, so writing more records after it would turn the
    /// torn tail into damage-before-the-tail — which recovery rightly
    /// refuses to load. A poisoned log rejects every append until a
    /// successful checkpoint (whose manifest covers every applied
    /// batch, including the ones the broken tail missed) discards the
    /// segments and heals it.
    poisoned: bool,
    /// Appends that returned an error since attach (see [`WalHealth`]).
    appends_failed: u64,
}

impl Wal {
    /// Opens a fresh WAL over `dir`. The caller must have just written a
    /// manifest covering the store's current epoch (that is what
    /// `attach_wal` does), so any segment already present holds only
    /// covered records and is removed. Appending starts a new segment
    /// lazily on the first record.
    pub(crate) fn open(dir: &Path, config: WalConfig) -> Result<Self, StreamError> {
        for path in segment_paths(dir)? {
            fault::remove_file(&path)?;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            active: None,
            sealed: Vec::new(),
            unsynced: 0,
            poisoned: false,
            appends_failed: 0,
        })
    }

    /// The directory this WAL lives in (`save` only maintains the WAL
    /// when checkpointing into the same directory).
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// The attached configuration.
    pub fn config(&self) -> WalConfig {
        self.config
    }

    /// Appends one batch record and syncs per policy. Any failure
    /// poisons the log (see [`Wal::poisoned`]); the batch stays applied
    /// in memory but is *not* durable, so the caller must surface the
    /// error instead of acking.
    pub(crate) fn append(&mut self, epoch: u64, delta: &BatchDelta) -> Result<(), StreamError> {
        if self.poisoned {
            self.appends_failed += 1;
            return Err(poisoned_error());
        }
        let result = self.try_append(epoch, delta);
        if result.is_err() {
            self.poisoned = true;
            self.appends_failed += 1;
        }
        result
    }

    /// Operator-visible durability state (see [`WalHealth`]).
    pub fn health(&self) -> WalHealth {
        WalHealth {
            attached: true,
            poisoned: self.poisoned,
            appends_failed: self.appends_failed,
        }
    }

    fn try_append(&mut self, epoch: u64, delta: &BatchDelta) -> Result<(), StreamError> {
        let frame = encode_record(epoch, delta);
        let needs_new = self
            .active
            .as_ref()
            .is_none_or(|a| a.bytes >= self.config.segment_bytes);
        if needs_new {
            self.rotate()?;
        }
        let a = self.active.as_mut().expect("rotate installs a segment");
        fault::append(&mut a.file, &a.path, &frame)?;
        a.bytes += frame.len() as u64;
        a.last = Some(epoch);
        self.unsynced += 1;
        let due = match self.config.sync {
            SyncPolicy::EveryBatch => true,
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::OsBuffered => false,
        };
        if due {
            fault::sync(&a.file, &a.path)?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Seals the current segment (if any) and starts a fresh one.
    fn rotate(&mut self) -> Result<(), StreamError> {
        self.seal_active()?;
        let seq = next_file_seq(&self.dir)?;
        let path = self.dir.join(format!("wal-{seq}.seg"));
        let mut file = fs::File::create(&path)?;
        let mut header = Vec::with_capacity(12);
        write_container_header(&mut header, WAL_MAGIC, WAL_VERSION)
            .expect("writing to Vec cannot fail");
        fault::append(&mut file, &path, &header)?;
        self.active = Some(ActiveSegment {
            file,
            path,
            bytes: header.len() as u64,
            last: None,
        });
        Ok(())
    }

    /// Fsyncs and closes the active segment, moving it to the sealed
    /// list; the next append starts a new segment.
    fn seal_active(&mut self) -> Result<(), StreamError> {
        if let Some(a) = self.active.take() {
            fault::sync(&a.file, &a.path)?;
            self.sealed.push(SealedSegment {
                path: a.path,
                last: a.last,
            });
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Fsyncs any buffered records — the graceful-shutdown drain.
    pub(crate) fn flush(&mut self) -> Result<(), StreamError> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        if let Some(a) = &self.active {
            fault::sync(&a.file, &a.path)?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Checkpoint maintenance, called by `save` *after* its manifest
    /// rename landed: seals the active segment, then removes every
    /// sealed segment whose records are all covered by the manifest.
    /// A sealed segment holding records past `manifest_epoch` is kept —
    /// a checkpoint can never truncate records it does not cover.
    ///
    /// `save` passes the store's current epoch, so on a poisoned log the
    /// manifest covers every applied batch — including the ones the
    /// broken tail missed — and the whole log can be discarded, healing
    /// the poison.
    pub(crate) fn checkpoint(&mut self, manifest_epoch: u64) -> Result<(), StreamError> {
        if self.poisoned {
            if let Some(a) = self.active.take() {
                // The file's tail is garbage the manifest supersedes:
                // drop it without the usual seal-time fsync.
                drop(a.file);
                fault::remove_file(&a.path)?;
            }
            while let Some(seg) = self.sealed.last() {
                fault::remove_file(&seg.path)?;
                self.sealed.pop();
            }
            self.unsynced = 0;
            self.poisoned = false;
            return Ok(());
        }
        self.seal_active()?;
        let mut keep = Vec::new();
        for seg in self.sealed.drain(..) {
            if seg.last.is_none_or(|l| l <= manifest_epoch) {
                fault::remove_file(&seg.path)?;
            } else {
                keep.push(seg);
            }
        }
        self.sealed = keep;
        Ok(())
    }
}

fn poisoned_error() -> StreamError {
    StreamError::Io(io::Error::other(
        "write-ahead log poisoned by an earlier append failure; \
         a successful save (or a restart) recovers it",
    ))
}

/// The directory's WAL segment files, sorted by sequence number.
fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".seg"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segs.push((seq, entry.path()));
            }
        }
    }
    segs.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(segs.into_iter().map(|(_, p)| p).collect())
}

/// Replays the log over `dir`: returns the records past `manifest_epoch`
/// in apply order, verified consecutive from `manifest_epoch + 1`.
/// Applies the torn-tail rule (see the module docs), physically
/// truncating a torn last segment at its last complete record.
pub fn recover(dir: &Path, manifest_epoch: u64) -> Result<Vec<WalRecord>, StreamError> {
    let paths = segment_paths(dir)?;
    let mut records = Vec::new();
    let mut expected = manifest_epoch + 1;
    let n = paths.len();
    'segments: for (i, path) in paths.iter().enumerate() {
        let is_last = i + 1 == n;
        let buf = fs::read(path)?;
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        // Header. A partial header in the last segment means the crash
        // hit segment creation: nothing durable in it, drop the file.
        if buf.len() < 12 {
            if is_last {
                fault::remove_file(path)?;
                break 'segments;
            }
            return Err(StreamError::Corrupt(format!(
                "wal segment {name} truncated before the tail"
            )));
        }
        if &buf[..8] != WAL_MAGIC {
            return Err(StreamError::Corrupt(format!(
                "wal segment {name} has bad magic"
            )));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version == 0 || version > WAL_VERSION {
            return Err(StreamError::UnsupportedVersion {
                found: version,
                max_supported: WAL_VERSION,
            });
        }
        let mut pos = 12usize;
        while pos < buf.len() {
            let torn = |pos: usize| -> Result<bool, StreamError> {
                if !is_last {
                    return Err(StreamError::Corrupt(format!(
                        "wal segment {name} damaged before the tail"
                    )));
                }
                // Torn tail: drop the interrupted bytes, keep the prefix.
                if pos <= 12 {
                    fault::remove_file(path)?;
                } else {
                    let f = fs::OpenOptions::new().write(true).open(path)?;
                    f.set_len(pos as u64)?;
                    f.sync_all()?;
                }
                Ok(true)
            };
            let (tag, payload, used) = match read_section_from(&buf[pos..]) {
                Ok(parts) => parts,
                Err(ContainerError::Truncated { .. }) => {
                    torn(pos)?;
                    break 'segments;
                }
                Err(ContainerError::Checksum { .. }) => {
                    // The frame is complete on disk; only the physically
                    // final frame of the last segment can be a torn
                    // append — an earlier mismatch is bit rot.
                    let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
                    let end = pos as u64 + 20 + len;
                    if is_last && end == buf.len() as u64 {
                        torn(pos)?;
                        break 'segments;
                    }
                    return Err(StreamError::Corrupt(format!(
                        "wal segment {name} record checksum mismatch before the tail"
                    )));
                }
                Err(other) => return Err(other.into()),
            };
            if &tag != REC_TAG {
                return Err(StreamError::Corrupt(format!(
                    "wal segment {name} holds foreign section '{}'",
                    String::from_utf8_lossy(&tag)
                )));
            }
            let rec = decode_record(payload)
                .map_err(|e| StreamError::Corrupt(format!("wal record in {name}: {e}")))?;
            if rec.epoch > manifest_epoch {
                if rec.epoch != expected {
                    return Err(StreamError::Corrupt(format!(
                        "wal gap: expected epoch {expected}, found {} in {name} \
                         (a covering segment was lost)",
                        rec.epoch
                    )));
                }
                expected += 1;
                records.push(rec);
            }
            pos += used;
        }
    }
    Ok(records)
}

/// Read-only tail scan for replication catch-up: returns the records
/// with epochs past `from_epoch`, verified consecutive from
/// `from_epoch + 1` — **without** the physical truncation side effects
/// of [`recover`], so it is safe to run against a live store's WAL
/// directory (the appender must be quiescent while the scan runs; the
/// server calls this from the writer thread between ticks, which is
/// exactly that).
///
/// Returns `Ok(None)` whenever the log cannot serve the request — no
/// segments, the requested epoch was checkpointed away (the first
/// uncovered record is past `from_epoch + 1`), a gap, damage, or a torn
/// tail cutting the run short. The caller falls back to shipping a full
/// snapshot; a read-side problem here never needs to be fatal.
pub fn read_tail(dir: &Path, from_epoch: u64) -> Result<Option<Vec<WalRecord>>, StreamError> {
    let paths = segment_paths(dir)?;
    let mut records = Vec::new();
    let mut expected = from_epoch + 1;
    for path in &paths {
        let buf = fs::read(path)?;
        if buf.len() < 12 || &buf[..8] != WAL_MAGIC {
            return Ok(None);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version == 0 || version > WAL_VERSION {
            return Ok(None);
        }
        let mut pos = 12usize;
        while pos < buf.len() {
            let (tag, payload, used) = match read_section_from(&buf[pos..]) {
                Ok(parts) => parts,
                Err(_) => return Ok(None),
            };
            if &tag != REC_TAG {
                return Ok(None);
            }
            let Ok(rec) = decode_record(payload) else {
                return Ok(None);
            };
            if rec.epoch > from_epoch {
                if rec.epoch != expected {
                    return Ok(None);
                }
                expected += 1;
                records.push(rec);
            }
            pos += used;
        }
    }
    Ok(Some(records))
}

// ------------------------------------------------------- record codec

fn write_term(w: &mut Vec<u8>, term: &Term) {
    // Writes to a Vec cannot fail.
    match term {
        Term::Iri(iri) => {
            w.write_u8(0).unwrap();
            w.write_str(iri).unwrap();
        }
        Term::Blank(label) => {
            w.write_u8(1).unwrap();
            w.write_str(label).unwrap();
        }
        Term::Literal(lit) => {
            w.write_u8(2).unwrap();
            write_literal(w, lit).unwrap();
        }
    }
}

fn read_term(r: &mut &[u8]) -> io::Result<Term> {
    match r.read_u8()? {
        0 => Ok(Term::Iri(r.read_str()?.into())),
        1 => Ok(Term::Blank(r.read_str()?.into())),
        2 => Ok(Term::Literal(read_literal(r)?)),
        tag => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown term tag {tag:#x}"),
        )),
    }
}

fn write_triples(w: &mut Vec<u8>, triples: &[Triple]) {
    w.write_u64(triples.len() as u64).unwrap();
    for t in triples {
        write_term(w, &t.subject);
        write_term(w, &t.predicate);
        write_term(w, &t.object);
    }
}

fn read_triples(r: &mut &[u8]) -> io::Result<Vec<Triple>> {
    let n = r.read_u64()?;
    // The count is untrusted: cap the pre-allocation, let push grow it.
    let mut triples = Vec::with_capacity(n.min(PREALLOC_CAP) as usize);
    for _ in 0..n {
        let subject = read_term(r)?;
        let predicate = read_term(r)?;
        let object = read_term(r)?;
        triples.push(Triple {
            subject,
            predicate,
            object,
        });
    }
    Ok(triples)
}

/// Encodes one record's payload — the exact bytes a `WREC` section
/// carries on disk, reused verbatim as the replication wire format
/// (se-server's `REPL_RECORD` frames), so leader and follower share one
/// codec with the crash-recovery path.
pub fn encode_record_payload(epoch: u64, delta: &BatchDelta) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + 32 * delta.len());
    payload.write_u64(epoch).unwrap();
    write_triples(&mut payload, &delta.added);
    write_triples(&mut payload, &delta.removed);
    payload
}

/// Decodes a record payload produced by [`encode_record_payload`] (or
/// lifted out of a `WREC` section). The input is untrusted wire data:
/// pre-allocations are capped and trailing bytes are an error.
pub fn decode_record_payload(payload: &[u8]) -> io::Result<WalRecord> {
    decode_record(payload)
}

fn encode_record(epoch: u64, delta: &BatchDelta) -> Vec<u8> {
    let payload = encode_record_payload(epoch, delta);
    let mut frame = Vec::with_capacity(payload.len() + 20);
    write_section(&mut frame, REC_TAG, &payload).expect("writing to Vec cannot fail");
    frame
}

fn decode_record(mut payload: &[u8]) -> io::Result<WalRecord> {
    let epoch = payload.read_u64()?;
    let added = read_triples(&mut payload)?;
    let removed = read_triples(&mut payload)?;
    if !payload.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} trailing bytes after record", payload.len()),
        ));
    }
    Ok(WalRecord {
        epoch,
        delta: BatchDelta { added, removed },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("se-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn delta(n: u64) -> BatchDelta {
        BatchDelta {
            added: vec![Triple::new(
                iri(&format!("s{n}")),
                iri("p"),
                Term::literal(format!("v{n}")),
            )],
            removed: vec![],
        }
    }

    #[test]
    fn record_roundtrip_covers_all_term_shapes() {
        let d = BatchDelta {
            added: vec![Triple::new(
                Term::blank("b0"),
                iri("p"),
                Term::Literal(se_rdf::Literal::lang("hej", "sv")),
            )],
            removed: vec![Triple::new(
                iri("s"),
                iri("q"),
                Term::Literal(se_rdf::Literal::typed("1", "http://x/int")),
            )],
        };
        let frame = encode_record(7, &d);
        let (tag, payload, used) = read_section_from(&frame).unwrap();
        assert_eq!((&tag, used), (REC_TAG, frame.len()));
        let rec = decode_record(payload).unwrap();
        assert_eq!(rec, WalRecord { epoch: 7, delta: d });
    }

    #[test]
    fn append_recover_roundtrip_with_rotation() {
        let dir = scratch("roundtrip");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryBatch,
                // Tiny segments: every append rotates.
                segment_bytes: 1,
            },
        )
        .unwrap();
        for epoch in 1..=5 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }
        assert!(segment_paths(&dir).unwrap().len() >= 5);
        let recs = recover(&dir, 0).unwrap();
        assert_eq!(recs.len(), 5);
        for (i, rec) in recs.iter().enumerate() {
            assert_eq!(rec.epoch, i as u64 + 1);
            assert_eq!(rec.delta, delta(rec.epoch));
        }
        // A manifest at epoch 3 skips the covered prefix.
        let recs = recover(&dir, 3).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [4, 5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_only_covered_segments() {
        let dir = scratch("truncate");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryBatch,
                segment_bytes: 1,
            },
        )
        .unwrap();
        for epoch in 1..=4 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }
        wal.checkpoint(2).unwrap();
        // Segments holding epochs 3 and 4 survive; 1 and 2 are gone.
        let recs = recover(&dir, 2).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_but_earlier_damage_is_corrupt() {
        let dir = scratch("torn");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        for epoch in 1..=3 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }
        drop(wal);
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let full = fs::read(&seg).unwrap();

        // Cut mid-way through the last record: recovery keeps the prefix.
        fs::write(&seg, &full[..full.len() - 7]).unwrap();
        let recs = recover(&dir, 0).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [1, 2]);
        // And the truncation is physical: a second recovery agrees.
        assert_eq!(recover(&dir, 0).unwrap().len(), 2);

        // Flip a bit in the *first* record of the restored file: that is
        // damage before the tail.
        fs::write(&seg, &full).unwrap();
        let mut rotted = full.clone();
        rotted[30] ^= 0x10;
        fs::write(&seg, &rotted).unwrap();
        assert!(matches!(recover(&dir, 0), Err(StreamError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gap_past_the_manifest_is_corrupt() {
        let dir = scratch("gap");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryBatch,
                segment_bytes: 1,
            },
        )
        .unwrap();
        for epoch in 1..=3 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }
        drop(wal);
        // Lose the middle segment: epoch 2 vanishes.
        let seg2 = segment_paths(&dir).unwrap().remove(1);
        fs::remove_file(seg2).unwrap();
        assert!(matches!(recover(&dir, 0), Err(StreamError::Corrupt(_))));
        // But a manifest already covering the gap recovers fine.
        assert_eq!(
            recover(&dir, 2)
                .unwrap()
                .iter()
                .map(|r| r.epoch)
                .collect::<Vec<_>>(),
            [3]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_poisons_until_a_checkpoint_heals() {
        let dir = scratch("poison");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append(1, &delta(1)).unwrap();

        // Make the next disk touch fail transiently: the append errors
        // and the log refuses further writes — a half-written tail must
        // not get more records behind it.
        fault::arm(&dir, 0, fault::FaultMode::Fail);
        assert!(wal.append(2, &delta(2)).is_err());
        fault::disarm(&dir);
        assert!(
            wal.append(3, &delta(3)).is_err(),
            "poisoned log rejects appends"
        );
        assert!(
            wal.flush().is_err(),
            "poisoned log cannot promise durability"
        );

        // A checkpoint covering the current epoch discards the log
        // wholesale and heals it.
        wal.checkpoint(3).unwrap();
        wal.append(4, &delta(4)).unwrap();
        assert_eq!(
            recover(&dir, 3)
                .unwrap()
                .iter()
                .map(|r| r.epoch)
                .collect::<Vec<_>>(),
            [4]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_counts_failed_and_refused_appends() {
        let dir = scratch("health");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(
            wal.health(),
            WalHealth {
                attached: true,
                poisoned: false,
                appends_failed: 0
            }
        );
        wal.append(1, &delta(1)).unwrap();
        fault::arm(&dir, 0, fault::FaultMode::Fail);
        assert!(wal.append(2, &delta(2)).is_err());
        fault::disarm(&dir);
        // Refusals while poisoned count too: operators watching the
        // counter see write loss accumulating, not a single blip.
        assert!(wal.append(3, &delta(3)).is_err());
        let h = wal.health();
        assert!(h.attached && h.poisoned);
        assert_eq!(h.appends_failed, 2);
        // Healing resets the poison flag; the failure history stays.
        wal.checkpoint(3).unwrap();
        wal.append(4, &delta(4)).unwrap();
        let h = wal.health();
        assert!(!h.poisoned);
        assert_eq!(h.appends_failed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_tail_serves_covering_records_without_truncating() {
        let dir = scratch("tail");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryBatch,
                segment_bytes: 1, // force one segment per record
            },
        )
        .unwrap();
        for epoch in 1..=5 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }

        let tail = read_tail(&dir, 2).unwrap().unwrap();
        assert_eq!(tail.iter().map(|r| r.epoch).collect::<Vec<_>>(), [3, 4, 5]);
        // A caught-up follower needs nothing; that is still a covered
        // request, distinct from an uncoverable one.
        assert_eq!(read_tail(&dir, 5).unwrap().unwrap().len(), 0);

        // Torn tail: the scan reports "cannot serve" (the snapshot path
        // takes over) and must NOT truncate — the live appender owns the
        // file, and `recover` after a real crash still sees the tear.
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        let full = fs::read(&seg).unwrap();
        fs::write(&seg, &full[..full.len() - 3]).unwrap();
        assert!(read_tail(&dir, 2).unwrap().is_none());
        assert_eq!(fs::read(&seg).unwrap().len(), full.len() - 3);

        // A gap (middle segment gone) is equally unservable.
        fs::write(&seg, &full).unwrap();
        let seg3 = segment_paths(&dir).unwrap().remove(2);
        fs::remove_file(&seg3).unwrap();
        assert!(read_tail(&dir, 2).unwrap().is_none());
        // ... but epochs wholly past the gap still are servable.
        assert_eq!(
            read_tail(&dir, 3)
                .unwrap()
                .unwrap()
                .iter()
                .map(|r| r.epoch)
                .collect::<Vec<_>>(),
            [4, 5]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_sync_counts_records() {
        let dir = scratch("everyn");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                sync: SyncPolicy::EveryN(3),
                segment_bytes: u64::MAX,
            },
        )
        .unwrap();
        for epoch in 1..=7 {
            wal.append(epoch, &delta(epoch)).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(recover(&dir, 0).unwrap().len(), 7);
        let _ = fs::remove_dir_all(&dir);
    }
}
