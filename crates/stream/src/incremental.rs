//! Semi-naive differential evaluation for continuous queries.
//!
//! Full re-evaluation costs O(queries × store) per batch even when the
//! batch touches three triples. This module maintains each registered
//! query's answers as a **materialized multiset** (projected row →
//! signed count) and, per batch, feeds only the batch's net delta
//! through the query's join plan, so steady-state cost is O(delta), not
//! O(store).
//!
//! # The delta rule
//!
//! For a BGP `O_1 ⋈ … ⋈ O_n` the change between the pre-batch state
//! (`old`) and the post-batch state (`new`) telescopes into one term
//! per *pivot* pattern:
//!
//! ```text
//! ΔQ = Σ_k  O_1^old ⋈ … ⋈ O_{k-1}^old  ⋈  Δ_k  ⋈  O_{k+1}^new ⋈ … ⋈ O_n^new
//! ```
//!
//! where `Δ_k` is the batch's net triples routed to pattern `k`
//! (weight +1 for additions, −1 for removals). Only the *new* state is
//! queryable after `apply`, so the old-state prefix joins are computed
//! by **compensation** — join is bilinear over weighted multisets:
//!
//! ```text
//! rows ⋈ O_j^old = rows ⋈ O_j^new − rows ⋈ A_j + rows ⋈ R_j
//! ```
//!
//! with `A_j`/`R_j` the batch's added/removed triples matching pattern
//! `j`. Store joins reuse [`se_sparql::exec::eval_pattern`] — the exact
//! code full evaluation runs — so merge joins, LiteMat interval
//! reasoning and overflow handling behave identically; delta joins are
//! plain nested loops over the (tiny) batch.
//!
//! # Multiset semantics
//!
//! Counts track *derivations*: a projected row's count is the number of
//! ways the BGP derives it (summed over UNION groups). Applying a
//! batch's signed updates yields the per-batch `added`/`removed` rows:
//! bag semantics for plain SELECT, support semantics (count 0→positive /
//! positive→0) under DISTINCT. Counts never go negative on a correct
//! delta — the agreement suite cross-checks this against full
//! re-evaluation and from-scratch rebuilds.
//!
//! # Fallback
//!
//! Queries the delta path can't handle yet — FILTER, BIND, LIMIT, or a
//! variable predicate — are registered with [`EvalStrategy::Full`] and
//! transparently re-evaluated from scratch each batch; their multiset
//! is still maintained (by diffing successive answers) so subscribers
//! get `added`/`removed` rows and unchanged-tick suppression either
//! way. A query's strategy is chosen once at registration and visible
//! via the registry.

use crate::continuous::{ContinuousQuery, ContinuousResult};
use crate::hybrid::BatchDelta;
use se_core::{TripleSource, Value};
use se_rdf::{Term, Triple};
use se_sparql::ast::{GroupPattern, Query, TermPattern, TriplePattern};
use se_sparql::exec::{
    concept_spec, eval_pattern, execute, group_var_index, predicate_spec, slot_to_term, PSpec, Row,
    Slot,
};
use se_sparql::{PlanCache, QueryError, QueryOptions, ResultSet};
use std::collections::HashMap;

/// How a registered continuous query is evaluated each batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Semi-naive delta evaluation over the materialized multiset:
    /// per-batch cost O(delta).
    Incremental,
    /// Full re-evaluation per batch (FILTER / BIND / LIMIT / variable
    /// predicates), diffed against the previous answers.
    Full,
}

/// Picks the strategy at registration time. Incremental requires a
/// pure BGP (optionally UNION/DISTINCT) with constant predicates and
/// no LIMIT — everything `eval_pattern` can replay over deltas.
pub(crate) fn choose_strategy(query: &Query) -> EvalStrategy {
    let pure_bgp = query
        .groups
        .iter()
        .all(|g| g.binds.is_empty() && g.filters.is_empty());
    let const_preds = query
        .groups
        .iter()
        .flat_map(|g| &g.patterns)
        .all(|tp| matches!(&tp.predicate, TermPattern::Term(Term::Iri(_))));
    if pure_bgp && const_preds && query.limit.is_none() {
        EvalStrategy::Incremental
    } else {
        EvalStrategy::Full
    }
}

/// A projected output row: one optional binding per output variable.
type OutRow = Vec<Option<Term>>;

/// A query's materialized answers: projected row → signed derivation
/// count. For [`EvalStrategy::Full`] queries the counts mirror the
/// final output rows instead (so diffing still works).
#[derive(Debug, Clone, Default)]
pub(crate) struct MaterializedState {
    counts: HashMap<OutRow, i64>,
    seeded: bool,
}

impl MaterializedState {
    pub(crate) fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// Applies signed row updates and reports the visible changes:
    /// bag semantics when `distinct` is off (one entry per derivation),
    /// support semantics when it is on (0→positive / positive→0 only).
    fn apply_updates(
        &mut self,
        updates: HashMap<OutRow, i64>,
        distinct: bool,
    ) -> (Vec<OutRow>, Vec<OutRow>) {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for (row, dw) in updates {
            if dw == 0 {
                continue;
            }
            let old = self.counts.get(&row).copied().unwrap_or(0);
            let new = old + dw;
            debug_assert!(new >= 0, "materialized count went negative: {row:?}");
            if new == 0 {
                self.counts.remove(&row);
            } else {
                self.counts.insert(row.clone(), new);
            }
            if distinct {
                if old <= 0 && new > 0 {
                    added.push(row);
                } else if old > 0 && new <= 0 {
                    removed.push(row);
                }
            } else if dw > 0 {
                added.extend(std::iter::repeat_n(row, dw as usize));
            } else {
                removed.extend(std::iter::repeat_n(row, (-dw) as usize));
            }
        }
        (added, removed)
    }

    /// Replaces the whole multiset (seeding / full re-evaluation),
    /// reporting the same change sets `apply_updates` would.
    fn replace(
        &mut self,
        new_counts: HashMap<OutRow, i64>,
        distinct: bool,
    ) -> (Vec<OutRow>, Vec<OutRow>) {
        let mut updates = new_counts;
        for (row, c) in &self.counts {
            *updates.entry(row.clone()).or_insert(0) -= c;
        }
        self.seeded = true;
        self.apply_updates(updates, distinct)
    }

    /// Materializes the full answer set (count-many repetitions, or one
    /// per row under DISTINCT).
    fn full_rows(&self, distinct: bool) -> Vec<OutRow> {
        let mut rows = Vec::new();
        for (row, &c) in &self.counts {
            if c <= 0 {
                continue;
            }
            let reps = if distinct { 1 } else { c as usize };
            rows.extend(std::iter::repeat_n(row.clone(), reps));
        }
        rows
    }
}

/// One batch-delta triple, pre-encoded against the post-batch store.
/// Terms that no longer resolve (removed and then compacted away) keep
/// `None` ids and fall back to term comparison — exact for overflow
/// singletons, which are the only terms that can vanish.
struct EncTriple<'a> {
    triple: &'a Triple,
    /// +1 for an added triple, −1 for a removed one.
    weight: i64,
    s_id: Option<u64>,
    /// Property id (non-type triples only).
    p_id: Option<u64>,
    is_type: bool,
    /// Concept id of a type triple's object.
    c_id: Option<u64>,
    /// Instance id of a resource object.
    o_id: Option<u64>,
}

fn encode_delta<'a, S: TripleSource + ?Sized>(
    store: &S,
    delta: &'a BatchDelta,
) -> Vec<EncTriple<'a>> {
    let mut out = Vec::with_capacity(delta.len());
    for (list, weight) in [(&delta.added, 1i64), (&delta.removed, -1i64)] {
        for t in list {
            let is_type = t.is_type_triple();
            out.push(EncTriple {
                triple: t,
                weight,
                s_id: store.instance_id(&t.subject),
                p_id: (!is_type)
                    .then(|| t.predicate.as_iri().and_then(|p| store.property_id(p)))
                    .flatten(),
                is_type,
                c_id: is_type
                    .then(|| t.object.as_iri().and_then(|c| store.concept_id(c)))
                    .flatten(),
                o_id: t
                    .object
                    .is_resource()
                    .then(|| store.instance_id(&t.object))
                    .flatten(),
            });
        }
    }
    out
}

/// Can this delta triple match the pattern's predicate position?
/// (Subject/object agreement is checked later by [`extend_row`].)
fn routes_to<S: TripleSource + ?Sized>(
    store: &S,
    d: &EncTriple<'_>,
    tp: &TriplePattern,
    reasoning: bool,
) -> bool {
    if tp.is_type_pattern() != d.is_type {
        return false;
    }
    if d.is_type {
        // Concept agreement is part of the object position.
        return true;
    }
    let TermPattern::Term(Term::Iri(p_iri)) = &tp.predicate else {
        return false;
    };
    match (d.p_id, predicate_spec(store, p_iri, reasoning)) {
        (_, PSpec::NoMatch) => false,
        (Some(id), PSpec::Exact(p)) => id == p,
        (Some(id), PSpec::Interval(iv)) => iv.contains(id),
        // The delta property vanished from every dictionary (removed
        // overflow singleton): it can only equal the pattern's IRI
        // textually, and then the ids would have resolved — so this is
        // effectively `false`, kept as a comparison for robustness.
        (None, _) => d.triple.predicate.as_iri() == Some(p_iri.as_ref()),
    }
}

/// Binds `slot` at `col`, or checks agreement if the column is already
/// bound (`term` is the delta triple's ground term at this position).
fn bind_slot<S: TripleSource + ?Sized>(
    store: &S,
    row: &mut Row,
    col: usize,
    slot: Slot,
    term: &Term,
) -> bool {
    match &row[col] {
        None => {
            row[col] = Some(slot);
            true
        }
        Some(existing) => slot_to_term(store, existing) == *term,
    }
}

/// Extends `base` with the bindings of delta triple `d` matched against
/// pattern `tp`, or `None` if they disagree. With an all-`None` base
/// this is the pivot seeding step; with a partial row it is the
/// compensation join.
fn extend_row<S: TripleSource + ?Sized>(
    store: &S,
    base: &Row,
    d: &EncTriple<'_>,
    tp: &TriplePattern,
    vars: &HashMap<&str, usize>,
    reasoning: bool,
) -> Option<Row> {
    let mut row = base.clone();
    match &tp.subject {
        TermPattern::Term(t) => {
            if *t != d.triple.subject {
                return None;
            }
        }
        TermPattern::Var(v) => {
            let slot = match d.s_id {
                Some(id) => Slot::Enc(Value::Instance(id)),
                None => Slot::Term(d.triple.subject.clone()),
            };
            if !bind_slot(store, &mut row, vars[v.as_str()], slot, &d.triple.subject) {
                return None;
            }
        }
    }
    if d.is_type {
        match &tp.object {
            TermPattern::Term(Term::Iri(c_iri)) => {
                let iv = concept_spec(store, c_iri, reasoning)?;
                match d.c_id {
                    Some(c) => {
                        if !iv.contains(c) {
                            return None;
                        }
                    }
                    None => {
                        if d.triple.object.as_iri() != Some(c_iri.as_ref()) {
                            return None;
                        }
                    }
                }
            }
            TermPattern::Term(_) => return None,
            TermPattern::Var(v) => {
                let slot = match d.c_id {
                    Some(c) => Slot::Enc(Value::Concept(c)),
                    None => Slot::Term(d.triple.object.clone()),
                };
                if !bind_slot(store, &mut row, vars[v.as_str()], slot, &d.triple.object) {
                    return None;
                }
            }
        }
    } else {
        match &tp.object {
            TermPattern::Term(t) => {
                if *t != d.triple.object {
                    return None;
                }
            }
            TermPattern::Var(v) => {
                let slot = match d.o_id {
                    Some(id) => Slot::Enc(Value::Instance(id)),
                    None => Slot::Term(d.triple.object.clone()),
                };
                if !bind_slot(store, &mut row, vars[v.as_str()], slot, &d.triple.object) {
                    return None;
                }
            }
        }
    }
    Some(row)
}

/// A partial row with its derivation weight.
type WRow = (Row, i64);

/// `eval_pattern` over weighted rows: buckets by weight (there are at
/// most a few distinct values, usually ±1), evaluates each bucket, and
/// reattaches the weight to every produced row.
fn eval_pattern_weighted<S: TripleSource + ?Sized>(
    store: &S,
    tp: &TriplePattern,
    rows: Vec<WRow>,
    vars: &HashMap<&str, usize>,
    options: &QueryOptions,
) -> Result<Vec<WRow>, QueryError> {
    let mut buckets: HashMap<i64, Vec<Row>> = HashMap::new();
    for (r, w) in rows {
        buckets.entry(w).or_default().push(r);
    }
    let mut out = Vec::new();
    for (w, bucket) in buckets {
        out.extend(
            eval_pattern(store, tp, bucket, vars, options)?
                .into_iter()
                .map(|r| (r, w)),
        );
    }
    Ok(out)
}

/// Accumulates one group's delta contributions into `updates`
/// (projected row → signed count change).
fn group_updates<S: TripleSource + ?Sized>(
    store: &S,
    group: &GroupPattern,
    options: &QueryOptions,
    enc: &[EncTriple<'_>],
    out_vars: &[String],
    updates: &mut HashMap<Vec<Option<Term>>, i64>,
) -> Result<(), QueryError> {
    let vars = group_var_index(group);
    let n_cols = vars.len();
    let order: Vec<usize> = if options.optimize {
        se_sparql::optimizer::order_patterns(&group.patterns, store, options.reasoning)
    } else {
        (0..group.patterns.len()).collect()
    };
    let patterns: Vec<&TriplePattern> = order.iter().map(|&i| &group.patterns[i]).collect();
    // Route each delta triple to the patterns it can match.
    let routed: Vec<Vec<&EncTriple<'_>>> = patterns
        .iter()
        .map(|tp| {
            enc.iter()
                .filter(|d| routes_to(store, d, tp, options.reasoning))
                .collect()
        })
        .collect();
    let empty: Row = vec![None; n_cols];
    for k in 0..patterns.len() {
        // Δ_k: delta triples pivoting at pattern k, with their signs.
        let mut rows: Vec<WRow> = Vec::new();
        for d in &routed[k] {
            if let Some(row) = extend_row(store, &empty, d, patterns[k], &vars, options.reasoning) {
                rows.push((row, d.weight));
            }
        }
        // New-state suffix: patterns k+1..n against the post-batch store.
        for tp in &patterns[k + 1..] {
            if rows.is_empty() {
                break;
            }
            rows = eval_pattern_weighted(store, tp, rows, &vars, options)?;
        }
        // Old-state prefix: patterns 0..k against the pre-batch store,
        // as (new − added + removed) compensation.
        for (j, tp) in patterns[..k].iter().enumerate() {
            if rows.is_empty() {
                break;
            }
            let mut next = eval_pattern_weighted(store, tp, rows.clone(), &vars, options)?;
            for d in &routed[j] {
                // An addition inflates the new-state join relative to
                // the old state, so it is subtracted; a removal is
                // added back: sign = −weight either way.
                let sign = -d.weight;
                for (row, w) in &rows {
                    if let Some(ext) = extend_row(store, row, d, tp, &vars, options.reasoning) {
                        next.push((ext, w * sign));
                    }
                }
            }
            rows = next;
        }
        for (row, w) in rows {
            if w == 0 {
                continue;
            }
            let projected: Vec<Option<Term>> = out_vars
                .iter()
                .map(|v| {
                    vars.get(v.as_str())
                        .and_then(|&i| row[i].as_ref())
                        .map(|slot| slot_to_term(store, slot))
                })
                .collect();
            *updates.entry(projected).or_insert(0) += w;
        }
    }
    Ok(())
}

/// [`se_sparql::exec::execute`], routed through the registry's shared
/// compiled-plan cache when one is installed: seeding and fallback
/// evaluations then reuse (or seed) the shape-level plan instead of
/// re-running the optimizer per batch.
fn execute_maybe_cached<S: TripleSource + ?Sized>(
    store: &S,
    query: &Query,
    options: &QueryOptions,
    cache: Option<&PlanCache>,
) -> Result<ResultSet, QueryError> {
    match cache {
        Some(cache) => cache.execute_ast(store, query, options),
        None => execute(store, query, options),
    }
}

/// Builds the per-batch answer for one registered query, maintaining
/// its materialized state. `delta` is the batch's captured net change
/// (`None` forces a full evaluation — used for seeding and fallback).
/// `emit_full` controls whether the (potentially large) full answer set
/// is materialized on the incremental path. `cache` is the registry's
/// shared plan cache for the full-evaluation paths, if installed.
pub(crate) fn evaluate_query<S: TripleSource + ?Sized>(
    q: &mut ContinuousQuery,
    store: &S,
    delta: Option<&BatchDelta>,
    emit_full: bool,
    cache: Option<&PlanCache>,
) -> Result<ContinuousResult, QueryError> {
    let out_vars = q.query.output_variables();
    let distinct = q.query.distinct;
    let incremental =
        q.strategy == EvalStrategy::Incremental && q.state.is_seeded() && delta.is_some();
    let (added, removed, results) = if incremental {
        let delta = delta.expect("checked above");
        let mut updates = HashMap::new();
        if !delta.is_empty() {
            let enc = encode_delta(store, delta);
            for group in &q.query.groups {
                group_updates(store, group, &q.options, &enc, &out_vars, &mut updates)?;
            }
        }
        let (added, removed) = q.state.apply_updates(updates, distinct);
        let rows = if emit_full {
            q.state.full_rows(distinct)
        } else {
            Vec::new()
        };
        (added, removed, rows)
    } else if q.strategy == EvalStrategy::Incremental {
        // Seeding (or a batch without a captured delta): one full
        // evaluation, with DISTINCT stripped so counts track
        // derivations; the support set is recovered from the counts.
        let mut bag = q.query.clone();
        bag.distinct = false;
        let rs = execute_maybe_cached(store, &bag, &q.options, cache)?;
        let mut counts: HashMap<Vec<Option<Term>>, i64> = HashMap::new();
        for row in rs.rows {
            *counts.entry(row).or_insert(0) += 1;
        }
        let (added, removed) = q.state.replace(counts, distinct);
        (added, removed, q.state.full_rows(distinct))
    } else {
        // Full fallback: counts mirror the final output rows so the
        // diff (and unchanged-tick detection) still works.
        let rs = execute_maybe_cached(store, &q.query, &q.options, cache)?;
        let mut counts: HashMap<Vec<Option<Term>>, i64> = HashMap::new();
        for row in &rs.rows {
            *counts.entry(row.clone()).or_insert(0) += 1;
        }
        let (added, removed) = q.state.replace(counts, false);
        (added, removed, rs.rows)
    };
    let rs = |rows: Vec<Vec<Option<Term>>>| ResultSet {
        variables: out_vars.clone(),
        rows,
    };
    Ok(ContinuousResult {
        id: q.id.clone(),
        strategy: q.strategy,
        incremental,
        added: rs(added),
        removed: rs(removed),
        results: rs(results),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_sparql::parse_query;

    fn strategy(q: &str) -> EvalStrategy {
        choose_strategy(&parse_query(q).unwrap())
    }

    #[test]
    fn strategy_selection() {
        assert_eq!(
            strategy("SELECT ?s WHERE { ?s <http://x/p> ?o }"),
            EvalStrategy::Incremental
        );
        assert_eq!(
            strategy("SELECT DISTINCT ?s WHERE { ?s a <http://x/C> . ?s <http://x/p> ?o }"),
            EvalStrategy::Incremental
        );
        assert_eq!(
            strategy("SELECT ?s WHERE { ?s <http://x/p> ?o } UNION { ?s <http://x/q> ?o }"),
            EvalStrategy::Incremental
        );
        // FILTER, BIND, LIMIT and variable predicates fall back.
        assert_eq!(
            strategy("SELECT ?s WHERE { ?s <http://x/p> ?o FILTER(?o > 3) }"),
            EvalStrategy::Full
        );
        assert_eq!(
            strategy("SELECT ?b WHERE { ?s <http://x/p> ?o BIND(?o AS ?b) }"),
            EvalStrategy::Full
        );
        assert_eq!(
            strategy("SELECT ?s WHERE { ?s <http://x/p> ?o } LIMIT 5"),
            EvalStrategy::Full
        );
        assert_eq!(strategy("SELECT ?s WHERE { ?s ?p ?o }"), EvalStrategy::Full);
    }

    #[test]
    fn multiset_distinct_vs_bag_changes() {
        let mut st = MaterializedState::default();
        let row = |s: &str| vec![Some(Term::iri(format!("http://x/{s}")))];
        // Two derivations of the same row under DISTINCT: one visible add.
        let (a, r) = st.apply_updates(HashMap::from([(row("a"), 2)]), true);
        assert_eq!((a.len(), r.len()), (1, 0));
        // Dropping one derivation is invisible; dropping the last removes.
        let (a, r) = st.apply_updates(HashMap::from([(row("a"), -1)]), true);
        assert_eq!((a.len(), r.len()), (0, 0));
        let (a, r) = st.apply_updates(HashMap::from([(row("a"), -1)]), true);
        assert_eq!((a.len(), r.len()), (0, 1));
        assert!(st.full_rows(true).is_empty());
        // Bag semantics report every derivation.
        let (a, _) = st.apply_updates(HashMap::from([(row("b"), 2)]), false);
        assert_eq!(a.len(), 2);
        assert_eq!(st.full_rows(false).len(), 2);
        assert_eq!(st.full_rows(true).len(), 1);
    }
}
