//! Fault injection for the persistence I/O paths.
//!
//! Every state-changing filesystem operation of the stream persistence
//! layer — atomic file writes, renames, removals, WAL appends and
//! fsyncs — is routed through the shims in this module. In production
//! they are thin wrappers over `std::fs`; a test can *arm* a directory
//! scope to make the Nth operation under it misbehave:
//!
//! * [`FaultMode::Fail`] — the Nth operation returns an error, later
//!   operations succeed (a transient I/O failure);
//! * [`FaultMode::ShortWrite`] — the Nth write persists only a prefix
//!   of its bytes, then the scope goes *dead*: every later operation
//!   errors (a torn write at the moment of a crash);
//! * [`FaultMode::Crash`] — the Nth and every later operation does
//!   nothing and errors (the process died just before the operation).
//!
//! "Dead" models a crashed process: the in-memory store may keep
//! mutating, but nothing reaches disk anymore — recovery tests then
//! reopen the directory as a fresh process would. Scopes are matched by
//! path prefix and held in a process-global table so the shims work
//! from shard-runtime worker threads, and concurrently running tests
//! with distinct scratch directories do not interfere.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// How an armed scope misbehaves at its trigger operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The Nth operation errors; later operations succeed.
    Fail,
    /// The Nth write persists a prefix of its bytes, then the scope is
    /// dead (every later operation errors). Non-write operations
    /// (rename, remove, sync) degrade to [`FaultMode::Crash`] behavior
    /// at the trigger.
    ShortWrite,
    /// The Nth and all later operations do nothing and error.
    Crash,
}

struct Armed {
    scope: PathBuf,
    nth: u64,
    mode: FaultMode,
    /// Operations observed under the scope so far.
    count: u64,
    /// Set once a `ShortWrite`/`Crash` trigger fired: all further
    /// operations error without touching disk.
    dead: bool,
}

static ARMED: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

fn table() -> std::sync::MutexGuard<'static, Vec<Armed>> {
    ARMED.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `scope`: the `nth` (0-based) state-changing operation under it
/// misbehaves per `mode`. Re-arming a scope resets its counter.
pub fn arm(scope: &Path, nth: u64, mode: FaultMode) {
    let mut t = table();
    t.retain(|a| a.scope != scope);
    t.push(Armed {
        scope: scope.to_path_buf(),
        nth,
        mode,
        count: 0,
        dead: false,
    });
}

/// Disarms `scope`, returning how many operations it observed.
pub fn disarm(scope: &Path) -> u64 {
    let mut t = table();
    let n = t.iter().find(|a| a.scope == scope).map_or(0, |a| a.count);
    t.retain(|a| a.scope != scope);
    n
}

/// Operations observed under `scope` so far (0 if not armed).
pub fn op_count(scope: &Path) -> u64 {
    table()
        .iter()
        .find(|a| a.scope == scope)
        .map_or(0, |a| a.count)
}

fn injected(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected fault: {what} ({})", path.display()))
}

/// What the armed table decided for one operation.
enum Verdict {
    /// Not armed / not yet at the trigger: run the real operation.
    Proceed,
    /// This operation fails, later ones are unaffected.
    FailOnce,
    /// Persist a prefix of the payload, then the scope is dead.
    Short,
    /// The scope is dead (now or from an earlier trigger): touch nothing.
    Dead,
}

/// Counts one operation under whatever scope covers `path`.
fn check(path: &Path) -> Verdict {
    let mut t = table();
    let Some(a) = t.iter_mut().find(|a| path.starts_with(&a.scope)) else {
        return Verdict::Proceed;
    };
    if a.dead {
        return Verdict::Dead;
    }
    let n = a.count;
    a.count += 1;
    if n != a.nth {
        return Verdict::Proceed;
    }
    match a.mode {
        FaultMode::Fail => Verdict::FailOnce,
        FaultMode::ShortWrite => {
            a.dead = true;
            Verdict::Short
        }
        FaultMode::Crash => {
            a.dead = true;
            Verdict::Dead
        }
    }
}

/// `fs::write` through the shim. A short write persists the first half
/// of `bytes` (durably, so recovery sees the torn prefix) then errors.
pub(crate) fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match check(path) {
        Verdict::Proceed => fs::write(path, bytes),
        Verdict::FailOnce => Err(injected("write failed", path)),
        Verdict::Dead => Err(injected("crashed before write", path)),
        Verdict::Short => {
            let mut f = fs::File::create(path)?;
            f.write_all(&bytes[..bytes.len() / 2])?;
            f.sync_all()?;
            Err(injected("short write", path))
        }
    }
}

/// `fs::rename` through the shim (counted against the destination's
/// scope; short-write degrades to crash — a rename has no prefix).
pub(crate) fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match check(to) {
        Verdict::Proceed => fs::rename(from, to),
        Verdict::FailOnce => Err(injected("rename failed", to)),
        Verdict::Short | Verdict::Dead => Err(injected("crashed before rename", to)),
    }
}

/// `fs::remove_file` through the shim.
pub(crate) fn remove_file(path: &Path) -> io::Result<()> {
    match check(path) {
        Verdict::Proceed => fs::remove_file(path),
        Verdict::FailOnce => Err(injected("remove failed", path)),
        Verdict::Short | Verdict::Dead => Err(injected("crashed before remove", path)),
    }
}

/// Appends `bytes` to an open file through the shim (the WAL hot path).
pub(crate) fn append(file: &mut fs::File, path: &Path, bytes: &[u8]) -> io::Result<()> {
    match check(path) {
        Verdict::Proceed => file.write_all(bytes),
        Verdict::FailOnce => Err(injected("append failed", path)),
        Verdict::Dead => Err(injected("crashed before append", path)),
        Verdict::Short => {
            file.write_all(&bytes[..bytes.len() / 2])?;
            file.sync_all()?;
            Err(injected("short append", path))
        }
    }
}

/// `File::sync_all` through the shim.
pub(crate) fn sync(file: &fs::File, path: &Path) -> io::Result<()> {
    match check(path) {
        Verdict::Proceed => file.sync_all(),
        Verdict::FailOnce => Err(injected("sync failed", path)),
        Verdict::Short | Verdict::Dead => Err(injected("crashed before sync", path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("se-fault-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unarmed_paths_pass_through() {
        let dir = scratch("pass");
        write_file(&dir.join("a"), b"hello").unwrap();
        assert_eq!(fs::read(dir.join("a")).unwrap(), b"hello");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_is_transient_but_crash_is_sticky() {
        let dir = scratch("modes");
        arm(&dir, 1, FaultMode::Fail);
        write_file(&dir.join("a"), b"x").unwrap();
        assert!(write_file(&dir.join("b"), b"x").is_err());
        write_file(&dir.join("c"), b"x").unwrap();
        assert_eq!(disarm(&dir), 3);

        arm(&dir, 0, FaultMode::Crash);
        assert!(write_file(&dir.join("d"), b"x").is_err());
        assert!(write_file(&dir.join("e"), b"x").is_err());
        assert!(!dir.join("d").exists());
        disarm(&dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_a_prefix_then_goes_dead() {
        let dir = scratch("short");
        arm(&dir, 0, FaultMode::ShortWrite);
        assert!(write_file(&dir.join("a"), b"0123456789").is_err());
        assert_eq!(fs::read(dir.join("a")).unwrap(), b"01234");
        assert!(write_file(&dir.join("b"), b"x").is_err());
        disarm(&dir);
        let _ = fs::remove_dir_all(&dir);
    }
}
