//! Error type of the ingestion subsystem.

use se_core::BuildError;
use se_sparql::error::QueryError;
use std::fmt;
use std::io;

/// Anything that can go wrong while ingesting, compacting or persisting.
#[derive(Debug)]
pub enum StreamError {
    /// A triple violating the store's shape rules (literal subject,
    /// non-IRI predicate, `rdf:type` with a literal object).
    Malformed(String),
    /// Rebuilding the succinct baseline failed.
    Build(BuildError),
    /// Persistence I/O failed.
    Io(io::Error),
    /// A continuous query failed to execute.
    Query(QueryError),
    /// A pooled shard worker panicked while applying routed operations.
    /// The panicking shard's in-flight overlay is lost, so the store is
    /// poisoned: every later `apply` fails with this error too (queries
    /// stay memory-safe and keep answering over the surviving state).
    Worker(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Malformed(msg) => write!(f, "malformed triple: {msg}"),
            StreamError::Build(e) => write!(f, "compaction rebuild failed: {e}"),
            StreamError::Io(e) => write!(f, "persistence I/O failed: {e}"),
            StreamError::Query(e) => write!(f, "continuous query failed: {e}"),
            StreamError::Worker(msg) => write!(f, "ingest worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Build(e) => Some(e),
            StreamError::Io(e) => Some(e),
            StreamError::Query(e) => Some(e),
            StreamError::Malformed(_) | StreamError::Worker(_) => None,
        }
    }
}

impl From<BuildError> for StreamError {
    fn from(e: BuildError) -> Self {
        StreamError::Build(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<QueryError> for StreamError {
    fn from(e: QueryError) -> Self {
        StreamError::Query(e)
    }
}
