//! Error type of the ingestion subsystem.

use se_core::BuildError;
use se_sds::ContainerError;
use se_sparql::error::QueryError;
use std::fmt;
use std::io;

/// Anything that can go wrong while ingesting, compacting or persisting.
#[derive(Debug)]
pub enum StreamError {
    /// A triple violating the store's shape rules (literal subject,
    /// non-IRI predicate, `rdf:type` with a literal object).
    Malformed(String),
    /// Rebuilding the succinct baseline failed.
    Build(BuildError),
    /// Persistence I/O failed.
    Io(io::Error),
    /// A continuous query failed to execute.
    Query(QueryError),
    /// A pooled shard worker panicked while applying routed operations.
    /// The panicking shard's in-flight overlay is lost, so the store is
    /// poisoned: every later `apply` fails with this error too (queries
    /// stay memory-safe and keep answering over the surviving state).
    Worker(String),
    /// A persisted store failed structural validation: bad magic, a
    /// truncated or checksum-mismatching section, a dangling manifest
    /// reference, internally inconsistent metadata, or write-ahead-log
    /// damage *before* the torn tail (a bad record that is not the
    /// interrupted final append, or an epoch gap between the manifest
    /// and the log). The on-disk state is left untouched; nothing is
    /// partially loaded.
    Corrupt(String),
    /// A persisted store was written by a newer format version than this
    /// build reads.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Highest version this build supports.
        max_supported: u32,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Malformed(msg) => write!(f, "malformed triple: {msg}"),
            StreamError::Build(e) => write!(f, "compaction rebuild failed: {e}"),
            StreamError::Io(e) => write!(f, "persistence I/O failed: {e}"),
            StreamError::Query(e) => write!(f, "continuous query failed: {e}"),
            StreamError::Worker(msg) => write!(f, "ingest worker panicked: {msg}"),
            StreamError::Corrupt(msg) => write!(f, "persisted store corrupt: {msg}"),
            StreamError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "persisted store has format version {found}, but this build reads up to {max_supported}"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Build(e) => Some(e),
            StreamError::Io(e) => Some(e),
            StreamError::Query(e) => Some(e),
            StreamError::Malformed(_)
            | StreamError::Worker(_)
            | StreamError::Corrupt(_)
            | StreamError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<ContainerError> for StreamError {
    fn from(e: ContainerError) -> Self {
        match e {
            // EOF inside the fixed header is truncation, and an
            // InvalidData report (e.g. a wrong or reordered section tag)
            // is structural damage — both are corruption of the file,
            // not a plumbing failure a caller should retry.
            ContainerError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ) =>
            {
                StreamError::Corrupt(match io.kind() {
                    io::ErrorKind::UnexpectedEof => "file truncated".into(),
                    _ => io.to_string(),
                })
            }
            ContainerError::Io(io) => StreamError::Io(io),
            ContainerError::UnsupportedVersion {
                found,
                max_supported,
            } => StreamError::UnsupportedVersion {
                found,
                max_supported,
            },
            other => StreamError::Corrupt(other.to_string()),
        }
    }
}

impl From<BuildError> for StreamError {
    fn from(e: BuildError) -> Self {
        StreamError::Build(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<QueryError> for StreamError {
    fn from(e: QueryError) -> Self {
        StreamError::Query(e)
    }
}
