//! The persistent shard worker runtime: one parked thread per shard.
//!
//! [`ShardedHybridStore`](crate::ShardedHybridStore)'s original ingest
//! path spawned `std::thread::scope` workers per batch — ~100µs of spawn
//! cost per worker, re-paid on every batch and prohibitive below ~1k ops.
//! [`ShardRuntime`] replaces the per-batch spawns with a fixed fleet of
//! **parked** workers (condvar-based — no busy spin, zero CPU while
//! idle), created lazily on the first parallel `apply` and owned by the
//! store:
//!
//! * **One SPSC job slot per worker.** Each worker owns a depth-one
//!   mutex+condvar slot; the single producer (the store, which submits
//!   under `&mut self`) hands one [`Task`] at a time to worker *i* and
//!   reaps its output with [`take`](ShardRuntime::take) (blocking) or
//!   [`try_take`](ShardRuntime::try_take) (polling, for background
//!   rebuilds). Waking a parked worker costs a mutex round-trip plus one
//!   `notify_one` — microseconds, not the ~100µs of a spawn — which
//!   moves the parallel break-even point down into the small-batch
//!   regime the paper's sensor streams live in.
//! * **Owned jobs, no scoped borrows.** Tasks are `'static` closures
//!   returning `Box<dyn Any + Send>`; the store moves each shard's
//!   overlay (`DeltaStore`), its routed op buffers, and an `Arc` of the
//!   frozen layers into the job and receives them back on reap. Job
//!   hand-off therefore needs no lifetime gymnastics and a worker can
//!   never observe a dangling borrow, even if the store panics
//!   mid-batch.
//! * **Panic containment.** A task that panics is caught
//!   (`catch_unwind`), rendered to a message, and surfaced as
//!   `Err(String)` from `take`/`try_take`; the worker thread survives
//!   and keeps serving jobs — a poisoned op never deadlocks the pool.
//! * **Scoped fan-out for readers.** [`run_scoped`](ShardRuntime::run_scoped)
//!   distributes short-lived *borrowing* closures (continuous-query
//!   evaluation over `&store`) across currently-idle workers and blocks
//!   until all complete before returning, which makes the lifetime
//!   extension sound; workers busy with a background rebuild are skipped
//!   and the caller runs the leftovers inline, so ingest, compaction and
//!   query evaluation share one bounded thread budget.
//! * **Joining drop.** Dropping the runtime flags shutdown, wakes every
//!   worker and joins it; a worker mid-rebuild finishes its current task
//!   first. No thread outlives the store.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A job for one worker: runs to completion, returns an opaque output.
pub type Task = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + 'static>;

/// What a reap yields: the task's output, or the rendered panic message
/// of a task that blew up (the worker itself survives).
pub type TaskResult = Result<Box<dyn Any + Send>, String>;

/// The depth-one SPSC hand-off slot of one worker.
#[derive(Default)]
struct SlotInner {
    /// A submitted task the worker has not yet picked up.
    task: Option<Task>,
    /// The finished task's output, awaiting reap.
    output: Option<TaskResult>,
    /// Set by `submit`, cleared by reap: a task is queued, running, or
    /// finished-but-unreaped.
    busy: bool,
    /// Set once by `Drop`; the worker exits at the next idle point.
    shutdown: bool,
}

struct Slot {
    inner: Mutex<SlotInner>,
    /// Worker parks here while idle.
    to_worker: Condvar,
    /// Callers park here in `take`.
    to_caller: Condvar,
}

/// A fixed fleet of parked worker threads, one per shard. See the module
/// docs for the hand-off protocol and thread-budget invariants.
pub struct ShardRuntime {
    slots: Vec<Arc<Slot>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("workers", &self.slots.len())
            .finish()
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker task panicked".to_string()
    }
}

fn worker_loop(slot: Arc<Slot>) {
    loop {
        let task = {
            let mut g = slot.inner.lock();
            loop {
                // Drain an accepted task before honouring shutdown: a
                // submitted job always runs (at most one can be queued),
                // so `submit` + `drop` never silently discards work.
                if let Some(task) = g.task.take() {
                    break task;
                }
                if g.shutdown {
                    return;
                }
                slot.to_worker.wait(&mut g);
            }
        };
        // A panicking task must not kill the worker: catch it and hand
        // the message back as this job's (failed) output. `AssertUnwindSafe`
        // is sound because the task owns everything it touches — a
        // half-mutated `DeltaStore` is dropped with the payload, never
        // observed again.
        let output =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).map_err(panic_message);
        let mut g = slot.inner.lock();
        g.output = Some(output);
        slot.to_caller.notify_all();
    }
}

impl ShardRuntime {
    /// Spawns `workers` parked threads.
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a runtime needs at least one worker");
        let slots: Vec<Arc<Slot>> = (0..workers)
            .map(|_| {
                Arc::new(Slot {
                    inner: Mutex::new(SlotInner::default()),
                    to_worker: Condvar::new(),
                    to_caller: Condvar::new(),
                })
            })
            .collect();
        let handles = slots
            .iter()
            .map(|slot| {
                let slot = Arc::clone(slot);
                std::thread::Builder::new()
                    .name("se-stream-shard-worker".into())
                    .spawn(move || worker_loop(slot))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { slots, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// `true` if worker `w` has a task queued, running, or finished but
    /// not yet reaped.
    pub fn is_busy(&self, w: usize) -> bool {
        self.slots[w].inner.lock().busy
    }

    /// Hands a task to worker `w`. Panics if the worker is busy — callers
    /// must reap the previous task first (the store's dispatch loop and
    /// `run_scoped` both guarantee this).
    pub(crate) fn submit(&self, w: usize, task: Task) {
        let slot = &self.slots[w];
        let mut g = slot.inner.lock();
        assert!(!g.busy, "worker {w} already has a task in flight");
        g.task = Some(task);
        g.busy = true;
        slot.to_worker.notify_one();
    }

    /// Blocks until worker `w`'s in-flight task finishes and returns its
    /// output. Panics if nothing was submitted.
    pub(crate) fn take(&self, w: usize) -> TaskResult {
        let slot = &self.slots[w];
        let mut g = slot.inner.lock();
        assert!(g.busy, "take({w}) without a submitted task");
        loop {
            if let Some(out) = g.output.take() {
                g.busy = false;
                return out;
            }
            slot.to_caller.wait(&mut g);
        }
    }

    /// Non-blocking reap: the output if worker `w`'s task has finished,
    /// `None` while it is still queued or running (or nothing was
    /// submitted).
    pub(crate) fn try_take(&self, w: usize) -> Option<TaskResult> {
        let mut g = self.slots[w].inner.lock();
        let out = g.output.take();
        if out.is_some() {
            g.busy = false;
        }
        out
    }

    /// Atomically claims worker `w` and hands it a task, or returns the
    /// task if the worker is (or just became) busy. Unlike [`submit`]
    /// this cannot panic on a lost race, which [`run_scoped`] relies on
    /// for unwind safety.
    ///
    /// [`submit`]: ShardRuntime::submit
    /// [`run_scoped`]: ShardRuntime::run_scoped
    fn try_submit(&self, w: usize, task: Task) -> Result<(), Task> {
        let slot = &self.slots[w];
        let mut g = slot.inner.lock();
        if g.busy {
            return Err(task);
        }
        g.task = Some(task);
        g.busy = true;
        slot.to_worker.notify_one();
        Ok(())
    }

    /// Runs short-lived borrowing closures across the currently-idle
    /// workers, blocking until every one has completed — the barrier is
    /// what makes handing non-`'static` closures to persistent threads
    /// sound. Tasks are distributed round-robin over idle workers; a
    /// group whose worker raced busy in the meantime (or every group,
    /// when all workers are mid-rebuild) runs inline on the caller.
    /// Returns the first panic message, after all tasks have finished
    /// either way.
    pub fn run_scoped<'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
    ) -> Result<(), String> {
        if tasks.is_empty() {
            return Ok(());
        }
        let idle: Vec<usize> = (0..self.workers()).filter(|&w| !self.is_busy(w)).collect();
        if idle.is_empty() {
            for task in tasks {
                task();
            }
            return Ok(());
        }
        // Round-robin the tasks into one group job per idle worker, and
        // type-erase them all *before* submitting anything: once the
        // first job is on a worker, nothing on this path may unwind
        // until the barrier below has reaped every submitted job, or a
        // worker could still be dereferencing the caller's freed stack.
        // The region is panic-free by construction: `try_submit` cannot
        // panic (no lost-race assert), the vectors are pre-sized, and
        // inline fallback groups run under `catch_unwind`.
        let mut groups: Vec<Vec<Box<dyn FnOnce() + Send + 'env>>> =
            (0..idle.len()).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            groups[i % idle.len()].push(task);
        }
        let jobs: Vec<(usize, Task)> = idle
            .iter()
            .zip(groups)
            .filter(|(_, group)| !group.is_empty())
            .map(|(&w, group)| {
                let job: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + 'env> =
                    Box::new(move || {
                        for task in group {
                            task();
                        }
                        Box::new(()) as Box<dyn Any + Send>
                    });
                // SAFETY: the transmute only erases the `'env` lifetime.
                // Every submitted job is reaped by the `take` barrier
                // below before this function returns (worker panics are
                // caught and surface as reap outputs), and the
                // submit-to-barrier region cannot unwind (see above), so
                // no borrow captured by the closures outlives `'env`.
                let job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + 'env>,
                        Task,
                    >(job)
                };
                (w, job)
            })
            .collect();
        let mut submitted = Vec::with_capacity(jobs.len());
        let mut first_err: Option<String> = None;
        for (w, job) in jobs {
            match self.try_submit(w, job) {
                Ok(()) => submitted.push(w),
                // Lost a race for the slot (another thread sharing this
                // runtime claimed it): run the group here instead.
                Err(job) => {
                    if let Err(payload) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                    {
                        if first_err.is_none() {
                            first_err = Some(panic_message(payload));
                        }
                    }
                }
            }
        }
        for w in submitted {
            if let Err(msg) = self.take(w) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(msg) => Err(msg),
        }
    }
}

impl Drop for ShardRuntime {
    /// Wakes and joins every worker. A worker mid-task finishes it first
    /// (its unreaped output is dropped with the slot); afterwards **zero
    /// runtime threads remain** — verified by the slot refcount check
    /// below, which can only pass once every worker has dropped its
    /// `Arc<Slot>` clone on thread exit.
    fn drop(&mut self) {
        for slot in &self.slots {
            let mut g = slot.inner.lock();
            g.shutdown = true;
            slot.to_worker.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A panic in `worker_loop` itself is impossible (tasks are
            // caught), so join errors only on forced thread death.
            let _ = handle.join();
        }
        for slot in &self.slots {
            debug_assert_eq!(
                Arc::strong_count(slot),
                1,
                "a worker thread outlived the runtime"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<T: Send + 'static>(v: T) -> Box<dyn Any + Send> {
        Box::new(v)
    }

    #[test]
    fn submit_take_roundtrip_returns_owned_output() {
        let rt = ShardRuntime::new(2);
        rt.submit(0, Box::new(|| boxed(41 + 1)));
        rt.submit(1, Box::new(|| boxed("side".to_string())));
        let a = rt.take(0).unwrap().downcast::<i32>().unwrap();
        let b = rt.take(1).unwrap().downcast::<String>().unwrap();
        assert_eq!((*a, b.as_str()), (42, "side"));
        assert!(!rt.is_busy(0) && !rt.is_busy(1));
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let rt = ShardRuntime::new(1);
        assert!(rt.try_take(0).is_none(), "idle worker has no output");
        let gate = Arc::new(Mutex::new(false));
        let g2 = Arc::clone(&gate);
        rt.submit(
            0,
            Box::new(move || {
                while !*g2.lock() {
                    std::thread::yield_now();
                }
                boxed(7u64)
            }),
        );
        assert!(rt.is_busy(0));
        assert!(rt.try_take(0).is_none(), "task still running");
        *gate.lock() = true;
        let out = loop {
            if let Some(out) = rt.try_take(0) {
                break out;
            }
            std::thread::yield_now();
        };
        assert_eq!(*out.unwrap().downcast::<u64>().unwrap(), 7);
    }

    /// The lifecycle satellite: a panicking task surfaces as an error —
    /// not a deadlock — and the worker keeps serving jobs afterwards.
    #[test]
    fn panicking_task_surfaces_as_error_and_worker_survives() {
        let rt = ShardRuntime::new(1);
        rt.submit(0, Box::new(|| panic!("shard op blew up")));
        let err = rt.take(0).unwrap_err();
        assert!(err.contains("shard op blew up"), "payload preserved: {err}");
        // The same worker is alive and functional.
        rt.submit(0, Box::new(|| boxed(5usize)));
        assert_eq!(*rt.take(0).unwrap().downcast::<usize>().unwrap(), 5);
    }

    /// The lifecycle satellite: drop joins every worker — the `Drop` impl
    /// asserts the slot refcounts, which can only reach 1 after each
    /// thread has exited and released its `Arc<Slot>`.
    #[test]
    fn drop_joins_all_workers_even_mid_task() {
        let rt = ShardRuntime::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        for w in 0..3 {
            let ran = Arc::clone(&ran);
            rt.submit(
                w,
                Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    boxed(())
                }),
            );
        }
        // Outputs deliberately left unreaped: drop must still terminate.
        drop(rt);
        assert_eq!(ran.load(Ordering::SeqCst), 3, "in-flight tasks completed");
    }

    #[test]
    fn run_scoped_borrows_caller_state_and_preserves_slots() {
        let rt = ShardRuntime::new(2);
        let mut outs = vec![0usize; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = outs
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i * i) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        rt.run_scoped(tasks).unwrap();
        assert_eq!(outs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        assert!(!rt.is_busy(0) && !rt.is_busy(1), "slots recycled");
    }

    /// Two threads sharing one runtime race `run_scoped` concurrently: a
    /// group whose worker was claimed first by the other thread falls
    /// back inline instead of panicking mid-submission (which would
    /// unwind past the reap barrier while workers still borrow the
    /// caller's stack). Every task runs exactly once either way.
    #[test]
    fn concurrent_run_scoped_callers_share_the_pool_safely() {
        let rt = ShardRuntime::new(2);
        for _ in 0..50 {
            let a = AtomicUsize::new(0);
            let b = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                a.fetch_add(1, Ordering::SeqCst);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    rt.run_scoped(tasks).unwrap();
                });
                scope.spawn(|| {
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                b.fetch_add(1, Ordering::SeqCst);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    rt.run_scoped(tasks).unwrap();
                });
            });
            assert_eq!(a.load(Ordering::SeqCst), 4);
            assert_eq!(b.load(Ordering::SeqCst), 4);
            assert!(!rt.is_busy(0) && !rt.is_busy(1), "slots recycled");
        }
    }

    #[test]
    fn run_scoped_skips_busy_workers_and_reports_panics() {
        let rt = ShardRuntime::new(2);
        let gate = Arc::new(Mutex::new(false));
        let g2 = Arc::clone(&gate);
        // Occupy worker 0 (a "background rebuild").
        rt.submit(
            0,
            Box::new(move || {
                while !*g2.lock() {
                    std::thread::yield_now();
                }
                boxed(())
            }),
        );
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                    if i == 2 {
                        panic!("query {i} failed");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = rt.run_scoped(tasks).unwrap_err();
        assert!(err.contains("query 2 failed"));
        assert_eq!(hits.load(Ordering::SeqCst), 3, "tasks before the panic ran");
        assert!(rt.is_busy(0), "background job undisturbed");
        *gate.lock() = true;
        rt.take(0).unwrap();
    }
}
