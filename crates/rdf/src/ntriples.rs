//! N-Triples parser and writer.
//!
//! N-Triples is the line-based RDF serialization the paper's datasets ship
//! in. The parser is hand-written (no dependencies), reports line-accurate
//! errors, and supports IRIs, blank nodes, plain/typed/language-tagged
//! literals, comments and blank lines.

use crate::model::{Graph, Literal, Term, Triple};
use std::fmt;

/// A parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for NtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for NtError {}

/// Parses an N-Triples document into a [`Graph`].
pub fn parse_ntriples(input: &str) -> Result<Graph, NtError> {
    let mut graph = Graph::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line, line_no)?;
        graph.insert(triple);
    }
    Ok(graph)
}

/// Serializes a graph as N-Triples text.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph {
        out.push_str(&triple.to_string());
        out.push('\n');
    }
    out
}

fn parse_line(line: &str, line_no: usize) -> Result<Triple, NtError> {
    let mut cursor = Cursor::new(line, line_no);
    let subject = cursor.parse_term()?;
    if !subject.is_resource() {
        return Err(cursor.error("subject must be an IRI or blank node"));
    }
    cursor.skip_ws();
    let predicate = cursor.parse_term()?;
    if !matches!(predicate, Term::Iri(_)) {
        return Err(cursor.error("predicate must be an IRI"));
    }
    cursor.skip_ws();
    let object = cursor.parse_term()?;
    cursor.skip_ws();
    if !cursor.eat('.') {
        return Err(cursor.error("expected terminating '.'"));
    }
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(cursor.error("unexpected trailing content after '.'"));
    }
    Ok(Triple::new(subject, predicate, object))
}

/// A character cursor over one line.
pub(crate) struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    source: &'a str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(line: &'a str, line_no: usize) -> Self {
        Self {
            chars: line.chars().collect(),
            pos: 0,
            line: line_no,
            source: line,
        }
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> NtError {
        NtError {
            line: self.line,
            message: format!(
                "{} (at column {} of {:?})",
                message.into(),
                self.pos + 1,
                self.source
            ),
        }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    pub(crate) fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    pub(crate) fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    pub(crate) fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Parses one RDF term: `<iri>`, `_:blank` or a literal.
    pub(crate) fn parse_term(&mut self) -> Result<Term, NtError> {
        match self.peek() {
            Some('<') => self.parse_iri(),
            Some('_') => self.parse_blank(),
            Some('"') => self.parse_literal(),
            Some(c) => Err(self.error(format!("unexpected character {c:?} at start of term"))),
            None => Err(self.error("unexpected end of line, expected a term")),
        }
    }

    pub(crate) fn parse_iri(&mut self) -> Result<Term, NtError> {
        assert!(self.eat('<'));
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Term::iri(iri)),
                Some(c) if c.is_whitespace() => {
                    return Err(self.error("whitespace inside IRI"));
                }
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI")),
            }
        }
    }

    pub(crate) fn parse_blank(&mut self) -> Result<Term, NtError> {
        assert!(self.eat('_'));
        if !self.eat(':') {
            return Err(self.error("blank node must start with '_:'"));
        }
        let mut label = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            label.push(self.bump().expect("peeked"));
        }
        // A trailing '.' belongs to the statement terminator, not the label.
        if label.ends_with('.') {
            label.pop();
            self.pos -= 1;
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(Term::blank(label))
    }

    pub(crate) fn parse_literal(&mut self) -> Result<Term, NtError> {
        assert!(self.eat('"'));
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('r') => value.push('\r'),
                    Some('t') => value.push('\t'),
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('u') => value.push(self.parse_unicode_escape(4)?),
                    Some('U') => value.push(self.parse_unicode_escape(8)?),
                    Some(c) => return Err(self.error(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.error("unterminated escape sequence")),
                },
                Some(c) => value.push(c),
                None => return Err(self.error("unterminated literal")),
            }
        }
        // Optional datatype or language tag.
        if self.eat('^') {
            if !self.eat('^') {
                return Err(self.error("expected '^^' before datatype IRI"));
            }
            let datatype = match self.parse_iri()? {
                Term::Iri(iri) => iri,
                _ => unreachable!(),
            };
            return Ok(Term::Literal(Literal::typed(value, datatype)));
        }
        if self.eat('@') {
            let mut lang = String::new();
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                lang.push(self.bump().expect("peeked"));
            }
            if lang.is_empty() {
                return Err(self.error("empty language tag"));
            }
            return Ok(Term::Literal(Literal::lang(value, lang)));
        }
        Ok(Term::Literal(Literal::string(value)))
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, NtError> {
        let mut code = 0u32;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.error("unterminated unicode escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.error(format!("invalid hex digit {c:?} in unicode escape")))?;
            code = code * 16 + d;
        }
        char::from_u32(code)
            .ok_or_else(|| self.error(format!("invalid unicode code point U+{code:X}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn parses_simple_triple() {
        let g = parse_ntriples("<http://x/s> <http://x/p> <http://x/o> .").unwrap();
        assert_eq!(g.len(), 1);
        let t = &g.triples()[0];
        assert_eq!(t.subject, Term::iri("http://x/s"));
        assert_eq!(t.predicate, Term::iri("http://x/p"));
        assert_eq!(t.object, Term::iri("http://x/o"));
    }

    #[test]
    fn parses_literals() {
        let input = concat!(
            "<http://x/s> <http://x/p> \"plain\" .\n",
            "<http://x/s> <http://x/p> \"3.14\"^^<http://www.w3.org/2001/XMLSchema#double> .\n",
            "<http://x/s> <http://x/p> \"hello\"@en .\n",
        );
        let g = parse_ntriples(input).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.triples()[0].object, Term::literal("plain"));
        assert_eq!(
            g.triples()[1].object,
            Term::Literal(Literal::typed("3.14", vocab::xsd::DOUBLE))
        );
        assert_eq!(
            g.triples()[2].object,
            Term::Literal(Literal::lang("hello", "en"))
        );
    }

    #[test]
    fn parses_blank_nodes() {
        let g = parse_ntriples("_:b0 <http://x/p> _:b1 .").unwrap();
        assert_eq!(g.triples()[0].subject, Term::blank("b0"));
        assert_eq!(g.triples()[0].object, Term::blank("b1"));
    }

    #[test]
    fn blank_node_followed_by_dot_without_space() {
        let g = parse_ntriples("<http://x/s> <http://x/p> _:b1.").unwrap();
        assert_eq!(g.triples()[0].object, Term::blank("b1"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# a comment\n\n<http://x/s> <http://x/p> \"v\" .\n   \n# another\n";
        let g = parse_ntriples(input).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn escape_sequences() {
        let g = parse_ntriples(r#"<http://x/s> <http://x/p> "a\"b\\c\ndA" ."#).unwrap();
        assert_eq!(g.triples()[0].object, Term::literal("a\"b\\c\ndA"));
    }

    #[test]
    fn error_on_missing_dot() {
        let err = parse_ntriples("<http://x/s> <http://x/p> <http://x/o>").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("terminating"), "{}", err.message);
    }

    #[test]
    fn error_on_literal_subject() {
        let err = parse_ntriples("\"lit\" <http://x/p> <http://x/o> .").unwrap_err();
        assert!(err.message.contains("subject"), "{}", err.message);
    }

    #[test]
    fn error_on_blank_predicate() {
        let err = parse_ntriples("<http://x/s> _:b <http://x/o> .").unwrap_err();
        assert!(err.message.contains("predicate"), "{}", err.message);
    }

    #[test]
    fn error_on_unterminated_iri() {
        let err = parse_ntriples("<http://x/s <http://x/p> <http://x/o> .").unwrap_err();
        assert!(err.message.contains("IRI"), "{}", err.message);
    }

    #[test]
    fn error_reports_correct_line() {
        let input = "<http://x/s> <http://x/p> <http://x/o> .\nbogus line\n";
        let err = parse_ntriples(input).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip() {
        let input = concat!(
            "<http://x/s> <http://x/p> <http://x/o> .\n",
            "_:b0 <http://x/q> \"esc\\\"aped\" .\n",
            "<http://x/s> <http://x/r> \"1\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<http://x/s> <http://x/r> \"hi\"@en .\n",
        );
        let g = parse_ntriples(input).unwrap();
        let text = write_ntriples(&g);
        let g2 = parse_ntriples(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_document() {
        let g = parse_ntriples("").unwrap();
        assert!(g.is_empty());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_term() -> impl Strategy<Value = Term> {
            prop_oneof![
                "[a-z]{1,10}".prop_map(|s| Term::iri(format!("http://example.org/{s}"))),
                "[a-z]{1,8}".prop_map(Term::blank),
                // Literals incl. characters that need escaping
                "[ -~]{0,20}".prop_map(Term::literal),
                ("[ -~]{0,10}", "[a-z]{2,3}").prop_map(|(v, l)| Term::Literal(Literal::lang(v, l))),
                "[0-9]{1,5}"
                    .prop_map(|v| Term::Literal(Literal::typed(v, crate::vocab::xsd::INTEGER))),
            ]
        }

        proptest! {
            #[test]
            fn write_parse_roundtrip(
                triples in proptest::collection::vec(
                    (arb_term(), arb_term()).prop_filter_map(
                        "subject must be resource",
                        |(s, o)| s.is_resource().then(|| Triple::new(
                            s,
                            Term::iri("http://example.org/p"),
                            o,
                        )),
                    ),
                    0..30,
                )
            ) {
                let g = Graph::from_triples(triples);
                let text = write_ntriples(&g);
                let back = parse_ntriples(&text).unwrap();
                prop_assert_eq!(g, back);
            }
        }
    }
}
