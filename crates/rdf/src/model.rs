//! RDF terms, triples and in-memory graphs.
//!
//! RDF (§3.1 of the paper) models data as a set of triples
//! `(subject, predicate, object)`. Subjects are IRIs or blank nodes,
//! predicates are IRIs, objects are IRIs, blank nodes or literals.
//! Properties whose objects are IRIs/blank nodes are *object properties*;
//! properties whose objects are literals are *datatype properties* — the
//! SuccinctEdge store lays the two out differently (§4).

use std::fmt;
use std::sync::Arc;

/// A literal value: lexical form plus optional datatype IRI or language tag.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"3.14"`.
    pub value: Arc<str>,
    /// Datatype IRI, e.g. `http://www.w3.org/2001/XMLSchema#double`.
    pub datatype: Option<Arc<str>>,
    /// Language tag, e.g. `en` (mutually exclusive with `datatype`).
    pub language: Option<Arc<str>>,
}

impl Literal {
    /// A plain string literal.
    pub fn string(value: impl Into<Arc<str>>) -> Self {
        Self {
            value: value.into(),
            datatype: None,
            language: None,
        }
    }

    /// A typed literal.
    pub fn typed(value: impl Into<Arc<str>>, datatype: impl Into<Arc<str>>) -> Self {
        Self {
            value: value.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// A language-tagged string.
    pub fn lang(value: impl Into<Arc<str>>, language: impl Into<Arc<str>>) -> Self {
        Self {
            value: value.into(),
            datatype: None,
            language: Some(language.into()),
        }
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Self::typed(v.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Self::typed(v.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// Attempts a numeric interpretation of the lexical form.
    pub fn as_f64(&self) -> Option<f64> {
        self.value.trim().parse().ok()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.value))?;
        if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        } else if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        }
        Ok(())
    }
}

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI such as `http://www.w3.org/ns/sosa/Sensor`.
    Iri(Arc<str>),
    /// A blank node with a local label (no leading `_:`).
    Blank(Arc<str>),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Convenience constructor for IRIs.
    pub fn iri(iri: impl Into<Arc<str>>) -> Self {
        Term::Iri(iri.into())
    }

    /// Convenience constructor for blank nodes.
    pub fn blank(label: impl Into<Arc<str>>) -> Self {
        Term::Blank(label.into())
    }

    /// Convenience constructor for plain string literals.
    pub fn literal(value: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::string(value))
    }

    /// `true` for IRIs and blank nodes (valid subjects / object-property
    /// objects).
    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }

    /// `true` for literals.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// SPARQL `str()`: the lexical form for literals, the IRI text for IRIs.
    pub fn str_value(&self) -> &str {
        match self {
            Term::Iri(iri) => iri,
            Term::Blank(b) => b,
            Term::Literal(lit) => &lit.value,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

/// An RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    /// Builds a triple.
    ///
    /// # Panics
    /// Panics (debug builds) if the subject is a literal or the predicate is
    /// not an IRI — such triples are not valid RDF.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        debug_assert!(
            subject.is_resource(),
            "triple subject must be IRI or blank node"
        );
        debug_assert!(
            matches!(predicate, Term::Iri(_)),
            "triple predicate must be an IRI"
        );
        Self {
            subject,
            predicate,
            object,
        }
    }

    /// `true` if the object is a literal (datatype-property triple, §4).
    pub fn is_datatype_triple(&self) -> bool {
        self.object.is_literal()
    }

    /// `true` if the predicate is `rdf:type`.
    pub fn is_type_triple(&self) -> bool {
        self.predicate.as_iri() == Some(crate::vocab::rdf::TYPE)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A simple in-memory bag of triples, the exchange format between the
/// generators, parsers and stores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    triples: Vec<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = Triple>>(triples: I) -> Self {
        Self {
            triples: triples.into_iter().collect(),
        }
    }

    /// Adds a triple.
    pub fn insert(&mut self, triple: Triple) {
        self.triples.push(triple);
    }

    /// Number of triples (duplicates included).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The triples in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Iterates over the triples.
    pub fn iter(&self) -> std::slice::Iter<'_, Triple> {
        self.triples.iter()
    }

    /// Sorts and removes duplicate triples.
    pub fn dedup(&mut self) {
        self.triples.sort();
        self.triples.dedup();
    }

    /// Keeps only the first `n` triples (used to carve the paper's 1K..50K
    /// subsets out of the 100K LUBM graph, §7.2).
    pub fn truncate(&mut self, n: usize) {
        self.triples.truncate(n);
    }

    /// Consumes the graph, returning its triples.
    pub fn into_triples(self) -> Vec<Triple> {
        self.triples
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = std::slice::Iter<'a, Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.triples.extend(iter);
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Self::from_triples(iter)
    }
}

/// Escapes `"`, `\`, and control characters for N-Triples output.
pub(crate) fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn term_constructors() {
        let iri = Term::iri("http://example.org/a");
        assert!(iri.is_resource());
        assert_eq!(iri.as_iri(), Some("http://example.org/a"));
        let blank = Term::blank("b0");
        assert!(blank.is_resource());
        assert_eq!(blank.as_iri(), None);
        let lit = Term::literal("hello");
        assert!(lit.is_literal());
        assert!(!lit.is_resource());
    }

    #[test]
    fn literal_numeric_interpretation() {
        assert_eq!(Literal::double(3.5).as_f64(), Some(3.5));
        assert_eq!(Literal::integer(-7).as_f64(), Some(-7.0));
        assert_eq!(Literal::string("  42 ").as_f64(), Some(42.0));
        assert_eq!(Literal::string("abc").as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::blank("n1").to_string(), "_:n1");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::Literal(Literal::typed("1", vocab::xsd::INTEGER)).to_string(),
            "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(
            Term::Literal(Literal::lang("bonjour", "fr")).to_string(),
            "\"bonjour\"@fr"
        );
    }

    #[test]
    fn display_escapes_literal() {
        let lit = Term::literal("a\"b\\c\nd");
        assert_eq!(lit.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn triple_classification() {
        let t = Triple::new(
            Term::iri("http://x/s"),
            Term::iri(vocab::rdf::TYPE),
            Term::iri("http://x/C"),
        );
        assert!(t.is_type_triple());
        assert!(!t.is_datatype_triple());
        let t = Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("v"),
        );
        assert!(t.is_datatype_triple());
        assert!(!t.is_type_triple());
    }

    #[test]
    fn graph_dedup_and_truncate() {
        let t1 = Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("1"),
        );
        let t2 = Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("2"),
        );
        let mut g = Graph::from_triples([t2.clone(), t1.clone(), t1.clone()]);
        assert_eq!(g.len(), 3);
        g.dedup();
        assert_eq!(g.len(), 2);
        g.truncate(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.triples()[0], t1);
    }

    #[test]
    fn str_value() {
        assert_eq!(Term::iri("http://x/a").str_value(), "http://x/a");
        assert_eq!(Term::literal("v").str_value(), "v");
        assert_eq!(Term::blank("b").str_value(), "b");
    }
}
