//! A pragmatic Turtle-subset parser.
//!
//! Covers the features the paper's datasets and ontologies actually use:
//! `@prefix` declarations, prefixed names (`sosa:Sensor`), the `a` keyword,
//! `;` (same subject) and `,` (same subject+predicate) continuations, IRIs,
//! blank nodes, and plain/typed/language-tagged literals, plus bare integer
//! and decimal literals. Everything else of Turtle (collections, nested
//! blank node property lists, multi-line strings) is out of scope and
//! reported as an error rather than silently misparsed.

use crate::model::{Graph, Literal, Term, Triple};
use crate::ntriples::NtError;
use std::collections::HashMap;

/// Parses a Turtle-subset document into a [`Graph`].
pub fn parse_turtle(input: &str) -> Result<Graph, NtError> {
    Parser::new(input).parse()
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
    _marker: std::marker::PhantomData<&'a str>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            prefixes: HashMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    fn error(&self, message: impl Into<String>) -> NtError {
        NtError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws_and_comments();
        self.pos >= self.chars.len()
    }

    fn parse(mut self) -> Result<Graph, NtError> {
        let mut graph = Graph::new();
        while !self.at_end() {
            if self.looking_at("@prefix") {
                self.parse_prefix()?;
                continue;
            }
            self.parse_statement(&mut graph)?;
        }
        Ok(graph)
    }

    fn looking_at(&self, word: &str) -> bool {
        self.input_slice().starts_with(word)
    }

    fn input_slice(&self) -> String {
        self.chars[self.pos..self.chars.len().min(self.pos + 16)]
            .iter()
            .collect()
    }

    fn parse_prefix(&mut self) -> Result<(), NtError> {
        for _ in 0.."@prefix".len() {
            self.bump();
        }
        self.skip_ws_and_comments();
        let mut name = String::new();
        while matches!(self.peek(), Some(c) if c != ':' && !c.is_whitespace()) {
            name.push(self.bump().expect("peeked"));
        }
        if !self.eat(':') {
            return Err(self.error("expected ':' in @prefix declaration"));
        }
        self.skip_ws_and_comments();
        let iri = match self.parse_iri_ref()? {
            Term::Iri(iri) => iri.to_string(),
            _ => unreachable!(),
        };
        self.skip_ws_and_comments();
        if !self.eat('.') {
            return Err(self.error("expected '.' after @prefix declaration"));
        }
        self.prefixes.insert(name, iri);
        Ok(())
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), NtError> {
        let subject = self.parse_term()?;
        if !subject.is_resource() {
            return Err(self.error("subject must be an IRI or blank node"));
        }
        loop {
            self.skip_ws_and_comments();
            let predicate = self.parse_predicate()?;
            loop {
                self.skip_ws_and_comments();
                let object = self.parse_term()?;
                graph.insert(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws_and_comments();
                if !self.eat(',') {
                    break;
                }
            }
            self.skip_ws_and_comments();
            if self.eat(';') {
                self.skip_ws_and_comments();
                // A dangling ';' before '.' is legal Turtle.
                if self.peek() == Some('.') {
                    self.bump();
                    return Ok(());
                }
                continue;
            }
            if self.eat('.') {
                return Ok(());
            }
            return Err(self.error("expected '.', ';' or ',' after object"));
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, NtError> {
        // The `a` keyword abbreviates rdf:type.
        if self.peek() == Some('a') {
            let next = self.chars.get(self.pos + 1).copied();
            if next.is_none_or(|c| c.is_whitespace()) {
                self.bump();
                return Ok(Term::iri(crate::vocab::rdf::TYPE));
            }
        }
        let term = self.parse_term()?;
        match term {
            Term::Iri(_) => Ok(term),
            _ => Err(self.error("predicate must be an IRI")),
        }
    }

    fn parse_term(&mut self) -> Result<Term, NtError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some('<') => self.parse_iri_ref(),
            Some('"') => self.parse_literal(),
            Some('_') => self.parse_blank(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some(_) => self.parse_prefixed_name(),
            None => Err(self.error("unexpected end of input, expected a term")),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<Term, NtError> {
        if !self.eat('<') {
            return Err(self.error("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(Term::iri(iri)),
                Some(c) if c.is_whitespace() => return Err(self.error("whitespace inside IRI")),
                Some(c) => iri.push(c),
                None => return Err(self.error("unterminated IRI")),
            }
        }
    }

    fn parse_blank(&mut self) -> Result<Term, NtError> {
        self.bump(); // '_'
        if !self.eat(':') {
            return Err(self.error("blank node must start with '_:'"));
        }
        let mut label = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
            label.push(self.bump().expect("peeked"));
        }
        if label.is_empty() {
            return Err(self.error("empty blank node label"));
        }
        Ok(Term::blank(label))
    }

    fn parse_literal(&mut self) -> Result<Term, NtError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('r') => value.push('\r'),
                    Some('t') => value.push('\t'),
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some(c) => return Err(self.error(format!("invalid escape '\\{c}'"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => value.push(c),
                None => return Err(self.error("unterminated literal")),
            }
        }
        if self.eat('^') {
            if !self.eat('^') {
                return Err(self.error("expected '^^'"));
            }
            self.skip_ws_and_comments();
            let dt = match self.peek() {
                Some('<') => self.parse_iri_ref()?,
                _ => self.parse_prefixed_name()?,
            };
            let Term::Iri(dt) = dt else {
                return Err(self.error("datatype must be an IRI"));
            };
            return Ok(Term::Literal(Literal::typed(value, dt)));
        }
        if self.eat('@') {
            let mut lang = String::new();
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                lang.push(self.bump().expect("peeked"));
            }
            if lang.is_empty() {
                return Err(self.error("empty language tag"));
            }
            return Ok(Term::Literal(Literal::lang(value, lang)));
        }
        Ok(Term::Literal(Literal::string(value)))
    }

    fn parse_number(&mut self) -> Result<Term, NtError> {
        let mut text = String::new();
        if matches!(self.peek(), Some('-' | '+')) {
            text.push(self.bump().expect("peeked"));
        }
        let mut is_decimal = false;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.') {
            // A '.' followed by a non-digit terminates the statement instead.
            if self.peek() == Some('.') {
                let next = self.chars.get(self.pos + 1).copied();
                if !next.is_some_and(|c| c.is_ascii_digit()) {
                    break;
                }
                is_decimal = true;
            }
            text.push(self.bump().expect("peeked"));
        }
        if text.is_empty() || text == "-" || text == "+" {
            return Err(self.error("malformed numeric literal"));
        }
        let datatype = if is_decimal {
            crate::vocab::xsd::DOUBLE
        } else {
            crate::vocab::xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(text, datatype)))
    }

    fn parse_prefixed_name(&mut self) -> Result<Term, NtError> {
        let mut prefix = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
            prefix.push(self.bump().expect("peeked"));
        }
        if !self.eat(':') {
            return Err(self.error(format!("expected prefixed name, got {prefix:?}")));
        }
        let mut local = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            // A trailing '.' is the statement terminator.
            if self.peek() == Some('.') {
                let next = self.chars.get(self.pos + 1).copied();
                if !next.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    break;
                }
            }
            local.push(self.bump().expect("peeked"));
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.error(format!("undeclared prefix {prefix:?}")))?;
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn parses_prefixed_names() {
        let g = parse_turtle("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o .").unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.triples()[0].subject, Term::iri("http://example.org/s"));
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let g = parse_turtle("@prefix ex: <http://example.org/> .\nex:s a ex:C .").unwrap();
        assert_eq!(g.triples()[0].predicate, Term::iri(vocab::rdf::TYPE));
    }

    #[test]
    fn semicolon_and_comma_continuations() {
        let g = parse_turtle(
            "@prefix ex: <http://x/> .\nex:s a ex:C ; ex:p ex:o1 , ex:o2 ; ex:q \"v\" .",
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.iter().all(|t| t.subject == Term::iri("http://x/s")));
        assert_eq!(g.triples()[1].object, Term::iri("http://x/o1"));
        assert_eq!(g.triples()[2].object, Term::iri("http://x/o2"));
    }

    #[test]
    fn numeric_literals() {
        let g =
            parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p 42 ; ex:q 3.5 ; ex:r -7 .").unwrap();
        assert_eq!(
            g.triples()[0].object,
            Term::Literal(Literal::typed("42", vocab::xsd::INTEGER))
        );
        assert_eq!(
            g.triples()[1].object,
            Term::Literal(Literal::typed("3.5", vocab::xsd::DOUBLE))
        );
        assert_eq!(
            g.triples()[2].object,
            Term::Literal(Literal::typed("-7", vocab::xsd::INTEGER))
        );
    }

    #[test]
    fn typed_literal_with_prefixed_datatype() {
        let g = parse_turtle(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n@prefix ex: <http://x/> .\nex:s ex:p \"1\"^^xsd:integer .",
        )
        .unwrap();
        assert_eq!(
            g.triples()[0].object,
            Term::Literal(Literal::typed("1", vocab::xsd::INTEGER))
        );
    }

    #[test]
    fn blank_nodes_and_comments() {
        let g = parse_turtle(
            "# header comment\n@prefix ex: <http://x/> .\n_:b0 ex:p _:b1 . # trailing\n",
        )
        .unwrap();
        assert_eq!(g.triples()[0].subject, Term::blank("b0"));
        assert_eq!(g.triples()[0].object, Term::blank("b1"));
    }

    #[test]
    fn error_on_undeclared_prefix() {
        let err = parse_turtle("ex:s ex:p ex:o .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"), "{}", err.message);
    }

    #[test]
    fn error_line_numbers_across_lines() {
        let err = parse_turtle("@prefix ex: <http://x/> .\n\nex:s ex:p zzz:o .").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn dangling_semicolon_before_dot() {
        let g = parse_turtle("@prefix ex: <http://x/> .\nex:s ex:p ex:o ; .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn multiline_statement() {
        let g = parse_turtle(
            "@prefix ex: <http://x/> .\nex:s\n  a ex:C ;\n  ex:p ex:o .\nex:t ex:q 1 .",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn local_name_with_dots() {
        let g = parse_turtle("@prefix ex: <http://x/> .\nex:a.b ex:p ex:o .").unwrap();
        assert_eq!(g.triples()[0].subject, Term::iri("http://x/a.b"));
    }
}
