//! Well-known vocabularies used throughout the reproduction: RDF, RDFS, OWL,
//! XSD, plus the IoT ontologies of the paper's motivating example (SOSA,
//! QUDT) and the LUBM university benchmark namespace.

/// `rdf:` — the RDF core vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// `rdfs:` — RDF Schema, the ontology language SuccinctEdge reasons over
/// (the ρdf subset: subClassOf, subPropertyOf, domain, range).
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

/// `owl:` — the handful of OWL terms LiteMat anchors its hierarchies on.
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    pub const TOP_OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#topObjectProperty";
    pub const TOP_DATA_PROPERTY: &str = "http://www.w3.org/2002/07/owl#topDataProperty";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
}

/// `xsd:` — XML Schema datatypes for literals.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
}

/// `sosa:` — Sensor, Observation, Sample, Actuator ontology (W3C/OGC),
/// used by the ENGIE water-distribution graphs of the motivating example.
pub mod sosa {
    pub const NS: &str = "http://www.w3.org/ns/sosa/";
    pub const PLATFORM: &str = "http://www.w3.org/ns/sosa/Platform";
    pub const SENSOR: &str = "http://www.w3.org/ns/sosa/Sensor";
    pub const OBSERVATION: &str = "http://www.w3.org/ns/sosa/Observation";
    pub const RESULT: &str = "http://www.w3.org/ns/sosa/Result";
    pub const HOSTS: &str = "http://www.w3.org/ns/sosa/hosts";
    pub const OBSERVES: &str = "http://www.w3.org/ns/sosa/observes";
    pub const HAS_RESULT: &str = "http://www.w3.org/ns/sosa/hasResult";
    pub const RESULT_TIME: &str = "http://www.w3.org/ns/sosa/resultTime";
    pub const MADE_BY_SENSOR: &str = "http://www.w3.org/ns/sosa/madeBySensor";
    pub const OBSERVED_PROPERTY: &str = "http://www.w3.org/ns/sosa/observedProperty";
}

/// `qudt:` — Quantities, Units, Dimensions and Types; supplies the unit
/// hierarchy of §2 (`AmountOfSubstanceUnit ⊑ Chemistry ⊑ ScienceUnit`,
/// `PressureOrStressUnit ⊑ PressureUnit ⊑ MechanicsUnit`).
pub mod qudt {
    pub const NS: &str = "http://qudt.org/schema/qudt/";
    pub const UNIT_NS: &str = "http://qudt.org/vocab/unit/";
    pub const NUMERIC_VALUE: &str = "http://qudt.org/schema/qudt/numericValue";
    pub const UNIT: &str = "http://qudt.org/schema/qudt/unit";
    pub const SCIENCE_UNIT: &str = "http://qudt.org/schema/qudt/ScienceUnit";
    pub const CHEMISTRY: &str = "http://qudt.org/schema/qudt/Chemistry";
    pub const AMOUNT_OF_SUBSTANCE_UNIT: &str = "http://qudt.org/schema/qudt/AmountOfSubstanceUnit";
    pub const MECHANICS_UNIT: &str = "http://qudt.org/schema/qudt/MechanicsUnit";
    pub const PRESSURE_UNIT: &str = "http://qudt.org/schema/qudt/PressureUnit";
    pub const PRESSURE_OR_STRESS_UNIT: &str = "http://qudt.org/schema/qudt/PressureOrStressUnit";
    pub const BAR: &str = "http://qudt.org/vocab/unit/BAR";
    pub const HECTO_PA: &str = "http://qudt.org/vocab/unit/HectoPA";
}

/// `lubm:` — the Lehigh University Benchmark (univ-bench) namespace used by
/// the synthetic evaluation datasets (§7.2 and Appendix A).
pub mod lubm {
    pub const NS: &str = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

    /// Builds a full LUBM IRI from a local name, e.g. `iri("Student")`.
    pub fn iri(local: &str) -> String {
        format!("{NS}{local}")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lubm_iri_builder() {
        assert_eq!(
            super::lubm::iri("GraduateStudent"),
            "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent"
        );
    }

    #[test]
    fn namespaces_are_prefixes() {
        assert!(super::rdf::TYPE.starts_with(super::rdf::NS));
        assert!(super::rdfs::SUB_CLASS_OF.starts_with(super::rdfs::NS));
        assert!(super::qudt::PRESSURE_UNIT.starts_with(super::qudt::NS));
        assert!(super::sosa::SENSOR.starts_with(super::sosa::NS));
    }
}
