//! # se-rdf — RDF data model and serialization for SuccinctEdge
//!
//! Terms, triples, graphs, and text serialization (N-Triples plus the
//! Turtle subset the paper's datasets use). This is the input layer of the
//! SuccinctEdge store (§3.1 of the paper): every dataset — the LUBM-like
//! synthetic graphs and the water-distribution sensor graphs — enters the
//! system as a stream of [`Triple`]s produced by these parsers.

pub mod model;
pub mod ntriples;
pub mod turtle;
pub mod vocab;

pub use model::{Graph, Literal, Term, Triple};
pub use ntriples::{parse_ntriples, write_ntriples, NtError};
pub use turtle::parse_turtle;
