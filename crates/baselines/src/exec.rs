//! A shared BGP executor for the baseline stores.
//!
//! Both baselines answer the same parsed [`se_sparql::Query`] AST as
//! SuccinctEdge, through the [`TripleSource`] abstraction: a store exposes
//! dictionary lookups plus one `triples_matching` access path and the
//! executor does greedy most-bound-first ordering with binding
//! propagation. No LiteMat, no intervals — reasoning for these systems is
//! the UNION rewriting of [`crate::rewrite`] (as the paper did manually,
//! §7.3.5).

use se_rdf::Term;
use se_sparql::ast::{GroupPattern, Query, TermPattern};
use se_sparql::exec::ResultSet;
use se_sparql::expr::{eval, Env, EvalValue};
use se_sparql::QueryError;
use std::collections::{HashMap, HashSet};

/// The access interface a baseline store exposes to the executor.
pub trait TripleSource {
    /// Id of a term, if present.
    fn resolve(&self, term: &Term) -> Option<u64>;
    /// Term of an id.
    fn decode(&self, id: u64) -> Option<Term>;
    /// All `(s, p, o)` id-triples matching the given bound positions.
    fn triples_matching(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<(u64, u64, u64)>;
}

#[derive(Debug, Clone)]
enum Slot {
    Id(u64),
    Term(Term),
}

type Row = Vec<Option<Slot>>;

/// Executes a parsed query against a baseline store.
pub fn execute<S: TripleSource>(store: &S, query: &Query) -> Result<ResultSet, QueryError> {
    let out_vars = query.output_variables();
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    for group in &query.groups {
        let (var_index, group_rows) = execute_group(store, group)?;
        for row in group_rows {
            let projected = out_vars
                .iter()
                .map(|v| {
                    var_index
                        .get(v.as_str())
                        .and_then(|&i| row[i].as_ref())
                        .map(|slot| slot_term(store, slot))
                })
                .collect();
            rows.push(projected);
        }
    }
    if query.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    Ok(ResultSet {
        variables: out_vars,
        rows,
    })
}

fn slot_term<S: TripleSource>(store: &S, slot: &Slot) -> Term {
    match slot {
        Slot::Id(id) => store
            .decode(*id)
            .unwrap_or_else(|| Term::literal("<dangling>")),
        Slot::Term(t) => t.clone(),
    }
}

fn execute_group<'a, S: TripleSource>(
    store: &S,
    group: &'a GroupPattern,
) -> Result<(HashMap<&'a str, usize>, Vec<Row>), QueryError> {
    let mut var_index: HashMap<&str, usize> = HashMap::new();
    for tp in &group.patterns {
        for v in tp.variables() {
            let next = var_index.len();
            var_index.entry(v).or_insert(next);
        }
    }
    for b in &group.binds {
        let next = var_index.len();
        var_index.entry(b.var.as_str()).or_insert(next);
    }
    let n_cols = var_index.len();
    let mut rows: Vec<Row> = vec![vec![None; n_cols]];

    // Greedy most-bound-first ordering (a standard baseline heuristic).
    let mut remaining: Vec<usize> = (0..group.patterns.len()).collect();
    let mut bound: HashSet<&str> = HashSet::new();
    while !remaining.is_empty() {
        let boundness = |i: usize| {
            let tp = &group.patterns[i];
            let count = |p: &TermPattern| match p {
                TermPattern::Term(_) => 1,
                TermPattern::Var(v) => usize::from(bound.contains(v.as_str())),
            };
            count(&tp.subject) + count(&tp.predicate) + count(&tp.object)
        };
        let pick = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| boundness(i))
            .map(|(k, _)| k)
            .expect("remaining nonempty");
        let tp_idx = remaining.swap_remove(pick);
        let tp = &group.patterns[tp_idx];
        rows = eval_tp(store, tp, rows, &var_index)?;
        bound.extend(tp.variables());
        if rows.is_empty() {
            break;
        }
    }

    // BINDs, then FILTERs.
    if !group.binds.is_empty() {
        for row in &mut rows {
            for b in &group.binds {
                let env = row_env(store, row, &var_index);
                if let Ok(v) = eval(&b.expr, &env) {
                    let col = var_index[b.var.as_str()];
                    row[col] = Some(Slot::Term(v.into_term()));
                }
            }
        }
    }
    for f in &group.filters {
        rows.retain(|row| {
            let env = row_env(store, row, &var_index);
            eval(f, &env).and_then(|v| v.truthy()).unwrap_or(false)
        });
    }
    Ok((var_index, rows))
}

fn row_env<'a, S: TripleSource>(
    store: &S,
    row: &Row,
    var_index: &HashMap<&'a str, usize>,
) -> Env<'a> {
    let mut env = Env::new();
    for (&var, &col) in var_index {
        if let Some(slot) = &row[col] {
            env.insert(var, EvalValue::Term(slot_term(store, slot)));
        }
    }
    env
}

fn eval_tp<S: TripleSource>(
    store: &S,
    tp: &se_sparql::TriplePattern,
    rows: Vec<Row>,
    vars: &HashMap<&str, usize>,
) -> Result<Vec<Row>, QueryError> {
    enum P {
        Bound(u64),
        Free(usize),
        NoMatch,
    }
    let resolve = |pat: &TermPattern, row: &Row| -> P {
        match pat {
            TermPattern::Term(t) => match store.resolve(t) {
                Some(id) => P::Bound(id),
                None => P::NoMatch,
            },
            TermPattern::Var(v) => {
                let col = vars[v.as_str()];
                match &row[col] {
                    Some(Slot::Id(id)) => P::Bound(*id),
                    Some(Slot::Term(t)) => match store.resolve(t) {
                        Some(id) => P::Bound(id),
                        None => P::NoMatch,
                    },
                    None => P::Free(col),
                }
            }
        }
    };
    let mut out = Vec::new();
    for row in rows {
        let s = resolve(&tp.subject, &row);
        let p = resolve(&tp.predicate, &row);
        let o = resolve(&tp.object, &row);
        if matches!(s, P::NoMatch) || matches!(p, P::NoMatch) || matches!(o, P::NoMatch) {
            continue;
        }
        let opt = |x: &P| match x {
            P::Bound(id) => Some(*id),
            _ => None,
        };
        let matches = store.triples_matching(opt(&s), opt(&p), opt(&o));
        for (ms, mp, mo) in matches {
            let mut new_row = row.clone();
            let mut ok = true;
            let mut bind = |pos: &P, id: u64, new_row: &mut Row| {
                if let P::Free(col) = pos {
                    match &new_row[*col] {
                        None => new_row[*col] = Some(Slot::Id(id)),
                        Some(Slot::Id(existing)) if *existing == id => {}
                        _ => ok = false,
                    }
                }
            };
            bind(&s, ms, &mut new_row);
            bind(&p, mp, &mut new_row);
            bind(&o, mo, &mut new_row);
            if ok {
                out.push(new_row);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MultiIndexStore;
    use se_rdf::{Graph, Triple};
    use se_sparql::parse_query;

    fn store() -> MultiIndexStore {
        let mut g = Graph::new();
        let iri = |s: &str| Term::iri(format!("http://x/{s}"));
        g.extend([
            Triple::new(iri("a"), iri("p"), iri("b")),
            Triple::new(iri("b"), iri("p"), iri("c")),
            Triple::new(iri("a"), iri("q"), Term::literal("1")),
        ]);
        MultiIndexStore::build(&g)
    }

    #[test]
    fn variable_predicate_is_supported_in_baselines() {
        // Unlike SuccinctEdge, classic stores answer ?p patterns.
        let st = store();
        let q = parse_query("SELECT ?p WHERE { <http://x/a> ?p ?o }").unwrap();
        let rs = execute(&st, &q).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn same_variable_twice_in_tp() {
        let mut g = Graph::new();
        let iri = |s: &str| Term::iri(format!("http://x/{s}"));
        g.insert(Triple::new(iri("a"), iri("p"), iri("a")));
        g.insert(Triple::new(iri("a"), iri("p"), iri("b")));
        let st = MultiIndexStore::build(&g);
        let q = parse_query("SELECT ?x WHERE { ?x <http://x/p> ?x }").unwrap();
        let rs = execute(&st, &q).unwrap();
        assert_eq!(rs.len(), 1, "only the self-loop matches");
    }
}
