//! The disk-based baseline (Jena TDB2 / RDF4Led analogue).
//!
//! Triples live in three on-disk B+trees (SPO, POS, OSP) behind a bounded
//! buffer pool; the dictionary stays in memory but is charged to the
//! on-disk footprint like TDB's node table. Cold queries pay page reads —
//! the structural property behind the paper's disk-vs-memory latency gaps
//! (§7.3.3: "RDF4Led and Jena TDB are loading data from disk").

use crate::btree::BTree;
use crate::dict::TermDict;
use crate::exec::TripleSource;
use crate::pager::{BufferPool, Pager, PoolStats};
use se_rdf::{Graph, Term};
use se_sparql::exec::ResultSet;
use se_sparql::{Query, QueryError};
use std::io;
use std::path::PathBuf;

/// A disk-resident triple store with three B+tree indexes.
pub struct DiskStore {
    dict: TermDict,
    pool: BufferPool,
    spo: BTree,
    pos: BTree,
    osp: BTree,
    path: PathBuf,
    n_triples: u64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("n_triples", &self.n_triples)
            .field("file", &self.path)
            .finish()
    }
}

impl DiskStore {
    /// Builds the store in a fresh file at `path`, with a buffer pool of
    /// `pool_pages` frames (a small pool mimics an edge device's cache).
    pub fn build(graph: &Graph, path: PathBuf, pool_pages: usize) -> io::Result<Self> {
        let pool = BufferPool::new(Pager::create(&path)?, pool_pages);
        let mut dict = TermDict::new();
        let mut spo = BTree::create(&pool)?;
        let mut pos = BTree::create(&pool)?;
        let mut osp = BTree::create(&pool)?;
        let mut n_triples = 0u64;
        for t in graph {
            let s = dict.get_or_insert(&t.subject);
            let p = dict.get_or_insert(&t.predicate);
            let o = dict.get_or_insert(&t.object);
            if spo.insert(&pool, (s, p, o))? {
                n_triples += 1;
            }
            pos.insert(&pool, (p, o, s))?;
            osp.insert(&pool, (o, s, p))?;
        }
        pool.flush()?;
        Ok(Self {
            dict,
            pool,
            spo,
            pos,
            osp,
            path,
            n_triples,
        })
    }

    /// Builds in a unique temporary file.
    pub fn build_temp(graph: &Graph, pool_pages: usize) -> io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut path = std::env::temp_dir();
        path.push(format!("se-diskstore-{}-{unique}.db", std::process::id()));
        Self::build(graph, path, pool_pages)
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.n_triples as usize
    }

    /// `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.n_triples == 0
    }

    /// Executes a parsed query.
    pub fn query(&self, query: &Query) -> Result<ResultSet, QueryError> {
        crate::exec::execute(self, query)
    }

    /// Parses and executes a query string.
    pub fn query_str(&self, text: &str) -> Result<ResultSet, QueryError> {
        let parsed = se_sparql::parse_query(text)?;
        self.query(&parsed)
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &TermDict {
        &self.dict
    }

    /// Buffer-pool / IO statistics.
    pub fn io_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// On-disk bytes of the triple indexes (the Figure 10 metric).
    pub fn triple_serialized_size(&self) -> usize {
        self.pool.file_size() as usize
    }

    /// Removes the backing file.
    pub fn destroy(self) -> io::Result<()> {
        let path = self.path.clone();
        drop(self);
        std::fs::remove_file(path)
    }
}

impl TripleSource for DiskStore {
    fn resolve(&self, term: &Term) -> Option<u64> {
        self.dict.id(term)
    }

    fn decode(&self, id: u64) -> Option<Term> {
        self.dict.term(id).cloned()
    }

    fn triples_matching(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<(u64, u64, u64)> {
        let expect = |r: io::Result<Vec<(u64, u64, u64)>>| r.unwrap_or_default();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&self.pool, (s, p, o)).unwrap_or(false) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => {
                expect(self.spo.range(&self.pool, (s, p, 0), (s, p + 1, 0)))
            }
            (Some(s), None, None) => expect(self.spo.range(&self.pool, (s, 0, 0), (s + 1, 0, 0))),
            (None, Some(p), Some(o)) => self
                .pos
                .range(&self.pool, (p, o, 0), (p, o + 1, 0))
                .unwrap_or_default()
                .into_iter()
                .map(|(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range(&self.pool, (p, 0, 0), (p + 1, 0, 0))
                .unwrap_or_default()
                .into_iter()
                .map(|(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range(&self.pool, (o, 0, 0), (o + 1, 0, 0))
                .unwrap_or_default()
                .into_iter()
                .map(|(o, s, p)| (s, p, o))
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range(&self.pool, (o, s, 0), (o, s + 1, 0))
                .unwrap_or_default()
                .into_iter()
                .map(|(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => expect(self.spo.range(
                &self.pool,
                (0, 0, 0),
                (u64::MAX, u64::MAX, u64::MAX),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_rdf::Triple;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(Triple::new(
                iri(&format!("s{}", i % 50)),
                iri(&format!("p{}", i % 5)),
                iri(&format!("o{i}")),
            ));
        }
        g
    }

    #[test]
    fn build_and_query() {
        let g = sample_graph(500);
        let st = DiskStore::build_temp(&g, 32).unwrap();
        assert_eq!(st.len(), 500);
        let rs = st
            .query_str("SELECT ?o WHERE { <http://x/s0> <http://x/p0> ?o }")
            .unwrap();
        assert!(!rs.is_empty());
        st.destroy().unwrap();
    }

    #[test]
    fn matches_memory_store_answers() {
        let g = sample_graph(300);
        let disk = DiskStore::build_temp(&g, 16).unwrap();
        let mem = crate::memory::MultiIndexStore::build(&g);
        for q in [
            "SELECT ?o WHERE { <http://x/s1> <http://x/p1> ?o }",
            "SELECT ?s WHERE { ?s <http://x/p2> ?o }",
            "SELECT ?s ?p WHERE { ?s ?p <http://x/o7> }",
        ] {
            let a = disk.query_str(q).unwrap();
            let b = mem.query_str(q).unwrap();
            let mut ra = a.rows.clone();
            let mut rb = b.rows.clone();
            ra.sort_by_key(|r| format!("{r:?}"));
            rb.sort_by_key(|r| format!("{r:?}"));
            assert_eq!(ra, rb, "query {q}");
        }
        disk.destroy().unwrap();
    }

    #[test]
    fn io_stats_accumulate() {
        let g = sample_graph(2_000);
        let st = DiskStore::build_temp(&g, 8).unwrap();
        let before = st.io_stats();
        let _ = st.query_str("SELECT ?s ?o WHERE { ?s <http://x/p3> ?o }");
        let after = st.io_stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
        st.destroy().unwrap();
    }

    #[test]
    fn empty_graph() {
        let st = DiskStore::build_temp(&Graph::new(), 4).unwrap();
        assert!(st.is_empty());
        let rs = st
            .query_str("SELECT ?s WHERE { ?s <http://x/p> ?o }")
            .unwrap();
        assert!(rs.is_empty());
        st.destroy().unwrap();
    }
}
