//! The baselines' term dictionary.
//!
//! Unlike SuccinctEdge's split dictionaries (§4), classic stores keep one
//! node table mapping *every* distinct term — IRIs, blank nodes and
//! literals alike — to an identifier. That is precisely why their
//! dictionaries are larger (the paper's Figure 9): every sensor reading
//! becomes a dictionary entry.

use se_rdf::Term;
use std::collections::HashMap;

/// A bidirectional term ↔ id dictionary over all term kinds.
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    terms: Vec<Term>,
    ids: HashMap<Term, u64>,
}

impl TermDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `term`, inserting it if new (dense ids `0..len`).
    pub fn get_or_insert(&mut self, term: &Term) -> u64 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as u64;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Id of `term`, if present.
    pub fn id(&self, term: &Term) -> Option<u64> {
        self.ids.get(term).copied()
    }

    /// Term with identifier `id`.
    pub fn term(&self, id: u64) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Approximate heap footprint (Figure 11 accounting): term strings are
    /// held twice (map key + vector) plus hash-map entry overhead.
    pub fn heap_size(&self) -> usize {
        self.terms
            .iter()
            .map(|t| 2 * term_bytes(t) + 2 * std::mem::size_of::<Term>() + 48)
            .sum()
    }

    /// Serialized (on-disk) size: length-prefixed strings with a kind tag
    /// (the Figure 9 metric).
    pub fn serialized_size(&self) -> usize {
        8 + self
            .terms
            .iter()
            .map(|t| 1 + 8 + term_bytes(t))
            .sum::<usize>()
    }
}

fn term_bytes(t: &Term) -> usize {
    match t {
        Term::Iri(i) => i.len(),
        Term::Blank(b) => b.len(),
        Term::Literal(l) => {
            l.value.len()
                + l.datatype.as_ref().map_or(0, |d| d.len())
                + l.language.as_ref().map_or(0, |d| d.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = TermDict::new();
        let a = d.get_or_insert(&Term::iri("http://x/a"));
        let b = d.get_or_insert(&Term::literal("42"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.get_or_insert(&Term::iri("http://x/a")), a);
        assert_eq!(d.term(a), Some(&Term::iri("http://x/a")));
        assert_eq!(d.id(&Term::literal("42")), Some(b));
        assert_eq!(d.id(&Term::literal("43")), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn literals_are_dictionary_entries() {
        // The design difference vs SuccinctEdge: every literal costs an
        // entry here.
        let mut d = TermDict::new();
        for i in 0..100 {
            d.get_or_insert(&Term::literal(format!("{i}.001")));
        }
        assert_eq!(d.len(), 100);
        assert!(d.serialized_size() > 100 * 9);
    }
}
