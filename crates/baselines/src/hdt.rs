//! An HDT-style Bitmap-Triples store (related work, paper §6).
//!
//! Header-Dictionary-Triples (Martínez-Prieto et al., ESWC 2012) stores
//! triples sorted **SPO** as "a forest of RDF trees, each tree rooted with
//! a given subject value", with bit sequences connecting the layers — the
//! same structural idea as SuccinctEdge but anchored on the *subject*
//! instead of the predicate.
//!
//! The layout is realized by reusing [`se_core::layer::TripleLayer`], which
//! is order-agnostic: feeding it `(s, p, o)` keys instead of `(p, s, o)`
//! yields exactly HDT's Bitmap-Triples (`WT` of subjects, bitmap to the
//! predicate runs, bitmap to the object runs).
//!
//! The consequence the paper's §6 discussion hinges on: an SPO anchor makes
//! subject-bound patterns cheap but `(?s, p, ?o)` — the typical IoT query
//! shape — requires touching *every subject tree*, whereas SuccinctEdge's
//! PSO anchor resolves it with one predicate lookup. `benches/ablation.rs`
//! measures this trade-off directly.

use crate::dict::TermDict;
use crate::exec::TripleSource;
use se_core::layer::TripleLayer;
use se_rdf::{Graph, Term};
use se_sds::{HeapSize, Serialize};
use se_sparql::exec::ResultSet;
use se_sparql::{Query, QueryError};

/// An HDT-style (SPO Bitmap-Triples) store.
#[derive(Debug, Clone)]
pub struct HdtStyleStore {
    dict: TermDict,
    /// The Bitmap-Triples layer, keyed `(s, p, o)`.
    layer: TripleLayer,
}

impl HdtStyleStore {
    /// Builds the store from a graph.
    pub fn build(graph: &Graph) -> Self {
        let mut dict = TermDict::new();
        let mut triples: Vec<(u64, u64, u64)> = graph
            .iter()
            .map(|t| {
                (
                    dict.get_or_insert(&t.subject),
                    dict.get_or_insert(&t.predicate),
                    dict.get_or_insert(&t.object),
                )
            })
            .collect();
        triples.sort_unstable();
        triples.dedup();
        Self {
            dict,
            layer: TripleLayer::build(&triples),
        }
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.layer.len()
    }

    /// `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.layer.is_empty()
    }

    /// Executes a parsed query through the shared baseline executor.
    pub fn query(&self, query: &Query) -> Result<ResultSet, QueryError> {
        crate::exec::execute(self, query)
    }

    /// Parses and executes a query string.
    pub fn query_str(&self, text: &str) -> Result<ResultSet, QueryError> {
        let parsed = se_sparql::parse_query(text)?;
        self.query(&parsed)
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &TermDict {
        &self.dict
    }

    /// Heap bytes of the triple layer plus the dictionary.
    pub fn memory_footprint(&self) -> usize {
        self.layer.heap_size() + self.dict.heap_size()
    }

    /// Serialized size of the Bitmap-Triples component (no dictionary).
    pub fn triple_serialized_size(&self) -> usize {
        self.layer.serialized_size()
    }

    /// `(p, o)` pairs of one subject — the access path HDT is built for.
    pub fn pairs_of_subject(&self, s: u64) -> Vec<(u64, u64)> {
        // In the reused layer the "predicate" axis holds subjects.
        self.layer.scan_predicate(s)
    }
}

impl TripleSource for HdtStyleStore {
    fn resolve(&self, term: &Term) -> Option<u64> {
        self.dict.id(term)
    }

    fn decode(&self, id: u64) -> Option<Term> {
        self.dict.term(id).cloned()
    }

    fn triples_matching(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<(u64, u64, u64)> {
        // Remember: the layer's axes are (subject, predicate, object).
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.layer.contains(s, p, o) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .layer
                .objects(s, p)
                .into_iter()
                .map(|o| (s, p, o))
                .collect(),
            (Some(s), None, Some(o)) => self
                .layer
                .subjects(s, o) // "subjects" of the layer = predicates here
                .into_iter()
                .map(|p| (s, p, o))
                .collect(),
            (Some(s), None, None) => self
                .layer
                .scan_predicate(s)
                .into_iter()
                .map(|(p, o)| (s, p, o))
                .collect(),
            // Unbound subject: the SPO anchor has no direct access path —
            // every subject tree is visited (the §6 trade-off).
            (None, p, o) => self
                .layer
                .iter()
                .filter(|&(_, tp, to)| p.is_none_or(|p| tp == p) && o.is_none_or(|o| to == o))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_rdf::Triple;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> HdtStyleStore {
        let mut g = Graph::new();
        g.extend([
            Triple::new(iri("a"), iri("p"), iri("b")),
            Triple::new(iri("a"), iri("p"), iri("c")),
            Triple::new(iri("a"), iri("q"), iri("b")),
            Triple::new(iri("b"), iri("p"), iri("c")),
        ]);
        HdtStyleStore::build(&g)
    }

    #[test]
    fn subject_anchored_access() {
        let st = sample();
        let a = st.resolve(&iri("a")).unwrap();
        let p = st.resolve(&iri("p")).unwrap();
        assert_eq!(st.triples_matching(Some(a), Some(p), None).len(), 2);
        assert_eq!(st.triples_matching(Some(a), None, None).len(), 3);
        assert_eq!(st.pairs_of_subject(a).len(), 3);
    }

    #[test]
    fn unbound_subject_falls_back_to_scan() {
        let st = sample();
        let p = st.resolve(&iri("p")).unwrap();
        let c = st.resolve(&iri("c")).unwrap();
        assert_eq!(st.triples_matching(None, Some(p), None).len(), 3);
        assert_eq!(st.triples_matching(None, Some(p), Some(c)).len(), 2);
        assert_eq!(st.triples_matching(None, None, Some(c)).len(), 2);
        assert_eq!(st.triples_matching(None, None, None).len(), 4);
    }

    #[test]
    fn queries_agree_with_multi_index() {
        let mut g = Graph::new();
        for i in 0..200 {
            g.insert(Triple::new(
                iri(&format!("s{}", i % 20)),
                iri(&format!("p{}", i % 4)),
                iri(&format!("o{}", i % 10)),
            ));
        }
        let hdt = HdtStyleStore::build(&g);
        let mem = crate::memory::MultiIndexStore::build(&g);
        for q in [
            "SELECT ?o WHERE { <http://x/s3> <http://x/p3> ?o }",
            "SELECT ?s WHERE { ?s <http://x/p1> <http://x/o5> }",
            "SELECT ?s ?o WHERE { ?s <http://x/p2> ?o }",
            "SELECT ?x ?y WHERE { <http://x/s1> ?x ?y }",
        ] {
            let mut a = hdt.query_str(q).unwrap().rows;
            let mut b = mem.query_str(q).unwrap().rows;
            a.sort_by_key(|r| format!("{r:?}"));
            b.sort_by_key(|r| format!("{r:?}"));
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn empty_store() {
        let st = HdtStyleStore::build(&Graph::new());
        assert!(st.is_empty());
        assert!(st.triples_matching(None, None, None).is_empty());
    }

    #[test]
    fn sizes_are_smaller_than_three_indexes() {
        let mut g = Graph::new();
        for i in 0..500 {
            g.insert(Triple::new(
                iri(&format!("s{}", i % 50)),
                iri(&format!("p{}", i % 5)),
                iri(&format!("o{i}")),
            ));
        }
        let hdt = HdtStyleStore::build(&g);
        let mem = crate::memory::MultiIndexStore::build(&g);
        assert!(
            hdt.triple_serialized_size() < mem.triple_serialized_size(),
            "one succinct SPO layout beats three raw permutations"
        );
    }
}
