//! # se-baselines — the comparison systems of the paper's evaluation (§7)
//!
//! The paper benchmarks SuccinctEdge against four JVM systems. What the
//! comparisons actually measure is *structural*: number of indexes
//! (memory footprint), disk- vs memory-residency (latency), and UNION
//! rewriting vs native intervals (reasoning cost). This crate rebuilds
//! those structures natively so the relative shapes are reproducible:
//!
//! * [`memory::MultiIndexStore`] — an in-memory triple store with three
//!   BTree indexes (SPO, POS, OSP) over a full term dictionary: the
//!   analogue of RDF4J's Memory Store / Jena-InMem;
//! * [`disk::DiskStore`] — a page-based, buffer-pool-managed store with
//!   three on-disk B+trees: the analogue of Jena TDB2 / RDF4Led
//!   (disk-resident, multiple indexes);
//! * [`rewrite`] — the UNION query rewriting the paper applies manually to
//!   give the baselines reasoning support (§7.3.5): every constant concept
//!   or property with a sub-hierarchy expands the query into the union of
//!   all substitution combinations;
//! * [`exec`] — a shared BGP executor for the baselines, reusing the
//!   se-sparql parser, AST and expression evaluator;
//! * [`hdt::HdtStyleStore`] — an HDT-style SPO Bitmap-Triples layout
//!   (related work, §6), used by the layout ablation.

pub mod btree;
pub mod dict;
pub mod disk;
pub mod exec;
pub mod hdt;
pub mod memory;
pub mod pager;
pub mod rewrite;

pub use disk::DiskStore;
pub use hdt::HdtStyleStore;
pub use memory::MultiIndexStore;
pub use rewrite::rewrite_with_ontology;
