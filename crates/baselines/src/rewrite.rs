//! UNION query rewriting — reasoning for systems without LiteMat.
//!
//! The paper gives the baselines reasoning support by manually rewriting
//! "each query as the union of all the possible sub-queries" (§7.3.5).
//! This module automates that: every constant concept in an `rdf:type` TP
//! and every constant property with a non-trivial sub-hierarchy is
//! replaced, in turn, by each of its sub-terms; the query becomes the
//! UNION of all substitution combinations.
//!
//! A query with `k` reasoning positions of fan-outs `n₁..n_k` explodes
//! into `∏ nᵢ` branches — exactly the cost LiteMat's interval encoding
//! avoids, and the effect the Figure 14 experiment measures ("the more
//! entailments the query requires, the more efficient SuccinctEdge is").

use se_litemat::Dictionaries;
use se_rdf::Term;
use se_sparql::ast::{GroupPattern, Query, TermPattern};

/// Maximum number of UNION branches a rewriting may produce.
pub const MAX_BRANCHES: usize = 65_536;

/// Rewrites `query` into its reasoning-complete UNION form with respect to
/// the hierarchies in `dicts`. Returns the number of branches produced
/// alongside the rewritten query.
///
/// Returns an error string if the rewriting would exceed [`MAX_BRANCHES`].
pub fn rewrite_with_ontology(
    query: &Query,
    dicts: &Dictionaries,
) -> Result<(Query, usize), String> {
    let mut groups = Vec::new();
    for group in &query.groups {
        groups.extend(rewrite_group(group, dicts)?);
        if groups.len() > MAX_BRANCHES {
            return Err(format!("UNION rewriting exceeds {MAX_BRANCHES} branches"));
        }
    }
    let n = groups.len();
    // Branches may overlap: an instance typed with two sub-concepts of the
    // same reasoning position matches two branches and would be reported
    // twice. The rewriting reconstructs the *certain-answer set* of the
    // entailment-aware query, so the result is marked DISTINCT.
    Ok((
        Query {
            select: query.select.clone(),
            distinct: true,
            limit: query.limit,
            groups,
        },
        n,
    ))
}

fn rewrite_group(group: &GroupPattern, dicts: &Dictionaries) -> Result<Vec<GroupPattern>, String> {
    // For each TP, the list of alternative TPs it expands into.
    let mut alternatives: Vec<Vec<se_sparql::TriplePattern>> = Vec::new();
    for tp in &group.patterns {
        let mut alts = Vec::new();
        if tp.is_type_pattern() {
            if let TermPattern::Term(Term::Iri(c)) = &tp.object {
                if let Some(iv) = dicts.concepts.interval(c) {
                    for sub in dicts.concepts.encoding().terms_in_interval(iv) {
                        let mut t = tp.clone();
                        t.object = TermPattern::Term(Term::iri(sub.to_string()));
                        alts.push(t);
                    }
                }
            }
        } else if let TermPattern::Term(Term::Iri(p)) = &tp.predicate {
            if let Some(iv) = dicts.properties.interval(p) {
                for sub in dicts.properties.encoding().terms_in_interval(iv) {
                    let mut t = tp.clone();
                    t.predicate = TermPattern::Term(Term::iri(sub.to_string()));
                    alts.push(t);
                }
            }
        }
        if alts.is_empty() {
            alts.push(tp.clone()); // unknown term: keep as-is
        }
        alternatives.push(alts);
    }
    // Cartesian product of alternatives.
    let total: usize = alternatives.iter().map(Vec::len).product();
    if total > MAX_BRANCHES {
        return Err(format!(
            "UNION rewriting of one group needs {total} branches (cap {MAX_BRANCHES})"
        ));
    }
    let mut branches: Vec<Vec<se_sparql::TriplePattern>> = vec![Vec::new()];
    for alts in &alternatives {
        let mut next = Vec::with_capacity(branches.len() * alts.len());
        for branch in &branches {
            for alt in alts {
                let mut b = branch.clone();
                b.push(alt.clone());
                next.push(b);
            }
        }
        branches = next;
    }
    Ok(branches
        .into_iter()
        .map(|patterns| GroupPattern {
            patterns,
            binds: group.binds.clone(),
            filters: group.filters.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ontology::Ontology;
    use se_sparql::parse_query;

    fn dicts() -> Dictionaries {
        let mut o = Ontology::new();
        o.add_class("http://x/B", "http://x/A");
        o.add_class("http://x/C", "http://x/A");
        o.add_property("http://x/worksFor", "http://x/memberOf");
        o.add_property("http://x/headOf", "http://x/worksFor");
        o.encode().unwrap()
    }

    #[test]
    fn concept_expansion() {
        let q = parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:A }").unwrap();
        let (rw, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 3, "A, B, C");
        assert_eq!(rw.groups.len(), 3);
    }

    #[test]
    fn property_expansion() {
        let q = parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:memberOf ?o }").unwrap();
        let (_, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 3, "memberOf, worksFor, headOf");
        let q = parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s e:worksFor ?o }").unwrap();
        let (_, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 2, "worksFor, headOf");
    }

    #[test]
    fn leaf_terms_do_not_expand() {
        let q = parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:B . ?s e:headOf ?o }")
            .unwrap();
        let (_, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn combined_expansion_is_a_product() {
        let q =
            parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:A . ?s e:memberOf ?o }")
                .unwrap();
        let (rw, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 9, "3 concepts × 3 properties");
        // Filters and binds are preserved per branch.
        assert!(rw.groups.iter().all(|g| g.patterns.len() == 2));
    }

    #[test]
    fn unknown_terms_kept_verbatim() {
        let q = parse_query("PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:Zzz }").unwrap();
        let (_, n) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn filters_survive_rewriting() {
        let q = parse_query(
            "PREFIX e: <http://x/> SELECT ?s WHERE { ?s a e:A . ?s e:v ?x . FILTER(?x > 3) }",
        )
        .unwrap();
        let (rw, _) = rewrite_with_ontology(&q, &dicts()).unwrap();
        assert!(rw.groups.iter().all(|g| g.filters.len() == 1));
    }
}
