//! Page-based file storage with a buffer pool.
//!
//! The substrate of the disk-resident baseline ([`crate::DiskStore`]):
//! fixed-size 4 KiB pages in a backing file, cached by a clock-eviction
//! buffer pool of bounded capacity. This reproduces the structural cost
//! the paper attributes to Jena TDB and RDF4Led — "loading data from disk
//! takes a non-negligible time" (§7.3.3) — without emulating a JVM.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// A page identifier.
pub type PageId = u64;

/// The backing file: allocate, read and write whole pages.
#[derive(Debug)]
pub struct Pager {
    file: File,
    n_pages: u64,
    /// Total page reads that actually hit the file (buffer-pool misses).
    pub disk_reads: u64,
    /// Total page writes to the file.
    pub disk_writes: u64,
}

impl Pager {
    /// Creates (truncating) a pager over `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            n_pages: 0,
            disk_reads: 0,
            disk_writes: 0,
        })
    }

    /// Number of allocated pages.
    pub fn n_pages(&self) -> u64 {
        self.n_pages
    }

    /// Allocates a fresh zeroed page.
    pub fn allocate(&mut self) -> io::Result<PageId> {
        let id = self.n_pages;
        self.n_pages += 1;
        self.write_page(id, &[0u8; PAGE_SIZE])?;
        Ok(id)
    }

    /// Reads a page from the file.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        self.disk_reads += 1;
        Ok(())
    }

    /// Writes a page to the file.
    pub fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        self.disk_writes += 1;
        Ok(())
    }

    /// Flushes the file to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// On-disk size in bytes.
    pub fn file_size(&self) -> u64 {
        self.n_pages * PAGE_SIZE as u64
    }
}

struct Frame {
    page_id: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    referenced: bool,
}

struct PoolInner {
    pager: Pager,
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    clock_hand: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// A clock-eviction buffer pool over a [`Pager`].
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &inner.capacity)
            .field("cached", &inner.frames.len())
            .field("hits", &inner.hits)
            .field("misses", &inner.misses)
            .finish()
    }
}

/// Buffer pool statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub n_pages: u64,
}

impl BufferPool {
    /// Wraps `pager` with a pool of `capacity` frames (≥ 1).
    pub fn new(pager: Pager, capacity: usize) -> Self {
        Self {
            inner: Mutex::new(PoolInner {
                pager,
                frames: Vec::new(),
                page_table: HashMap::new(),
                clock_hand: 0,
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Allocates a fresh page.
    pub fn allocate(&self) -> io::Result<PageId> {
        self.inner.lock().pager.allocate()
    }

    /// Runs `f` over the (read-only) contents of `page`.
    pub fn with_page<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> io::Result<R> {
        let mut inner = self.inner.lock();
        let idx = inner.load(page)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Runs `f` over the mutable contents of `page`, marking it dirty.
    pub fn with_page_mut<R>(
        &self,
        page: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> io::Result<R> {
        let mut inner = self.inner.lock();
        let idx = inner.load(page)?;
        inner.frames[idx].dirty = true;
        Ok(f(&mut inner.frames[idx].data))
    }

    /// Writes all dirty frames back and syncs the file.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        for i in 0..inner.frames.len() {
            if inner.frames[i].dirty {
                let id = inner.frames[i].page_id;
                let data = *inner.frames[i].data;
                inner.pager.write_page(id, &data)?;
                inner.frames[i].dirty = false;
            }
        }
        inner.pager.sync()
    }

    /// Pool and pager statistics.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            disk_reads: inner.pager.disk_reads,
            disk_writes: inner.pager.disk_writes,
            n_pages: inner.pager.n_pages(),
        }
    }

    /// On-disk size in bytes.
    pub fn file_size(&self) -> u64 {
        self.inner.lock().pager.file_size()
    }
}

impl PoolInner {
    /// Ensures `page` is cached and returns its frame index.
    fn load(&mut self, page: PageId) -> io::Result<usize> {
        if let Some(&idx) = self.page_table.get(&page) {
            self.hits += 1;
            self.frames[idx].referenced = true;
            return Ok(idx);
        }
        self.misses += 1;
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.pager.read_page(page, &mut data)?;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_id: page,
                data,
                dirty: false,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim();
            let old = &mut self.frames[victim];
            if old.dirty {
                let id = old.page_id;
                let bytes = *old.data;
                self.pager.write_page(id, &bytes)?;
            }
            let old = &mut self.frames[victim];
            self.page_table.remove(&old.page_id);
            old.page_id = page;
            old.data = data;
            old.dirty = false;
            old.referenced = true;
            victim
        };
        self.page_table.insert(page, idx);
        Ok(idx)
    }

    /// Clock (second-chance) eviction.
    fn pick_victim(&mut self) -> usize {
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
            } else {
                return idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("se-pager-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn pager_roundtrip() {
        let path = temp_path("roundtrip");
        let mut pager = Pager::create(&path).unwrap();
        let p0 = pager.allocate().unwrap();
        let p1 = pager.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(p1, &buf).unwrap();
        let mut back = [0u8; PAGE_SIZE];
        pager.read_page(p1, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[PAGE_SIZE - 1], 0xCD);
        pager.read_page(p0, &mut back).unwrap();
        assert_eq!(back[0], 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pool_caches_pages() {
        let path = temp_path("cache");
        let pool = BufferPool::new(Pager::create(&path).unwrap(), 4);
        let p = pool.allocate().unwrap();
        pool.with_page_mut(p, |data| data[7] = 42).unwrap();
        // Repeated reads hit the cache.
        for _ in 0..10 {
            let v = pool.with_page(p, |data| data[7]).unwrap();
            assert_eq!(v, 42);
        }
        let stats = pool.stats();
        assert!(stats.hits >= 10);
        assert_eq!(stats.misses, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_and_writeback() {
        let path = temp_path("evict");
        let pool = BufferPool::new(Pager::create(&path).unwrap(), 2);
        let pages: Vec<PageId> = (0..6).map(|_| pool.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page_mut(p, |data| data[0] = i as u8).unwrap();
        }
        // Every page still holds its value after churn through a 2-frame pool.
        for (i, &p) in pages.iter().enumerate() {
            let v = pool.with_page(p, |data| data[0]).unwrap();
            assert_eq!(v, i as u8, "page {p}");
        }
        let stats = pool.stats();
        assert!(stats.misses > 2, "pool too small to cache everything");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let path = temp_path("flush");
        {
            let pool = BufferPool::new(Pager::create(&path).unwrap(), 8);
            let p = pool.allocate().unwrap();
            pool.with_page_mut(p, |data| data[100] = 9).unwrap();
            pool.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[100], 9);
        std::fs::remove_file(&path).ok();
    }
}
