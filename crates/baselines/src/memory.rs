//! The in-memory multi-index baseline (RDF4J Memory Store / Jena-InMem
//! analogue).
//!
//! Three complete BTree indexes (SPO, POS, OSP) over a full term
//! dictionary. Fast lookups from any bound-position combination, at the
//! memory cost the paper's Figure 11 attributes to these systems: "we
//! mainly attribute this to the size of the indexes stored by both RDF4J
//! and Jena_InMem".

use crate::dict::TermDict;
use crate::exec::TripleSource;
use se_rdf::{Graph, Term};
use se_sparql::exec::ResultSet;
use se_sparql::{Query, QueryError};
use std::collections::BTreeSet;

/// An in-memory triple store with three BTree indexes.
#[derive(Debug, Clone, Default)]
pub struct MultiIndexStore {
    dict: TermDict,
    spo: BTreeSet<(u64, u64, u64)>,
    pos: BTreeSet<(u64, u64, u64)>,
    osp: BTreeSet<(u64, u64, u64)>,
}

impl MultiIndexStore {
    /// Builds the store (dictionary + three indexes) from a graph.
    pub fn build(graph: &Graph) -> Self {
        let mut st = Self::default();
        for t in graph {
            let s = st.dict.get_or_insert(&t.subject);
            let p = st.dict.get_or_insert(&t.predicate);
            let o = st.dict.get_or_insert(&t.object);
            st.spo.insert((s, p, o));
            st.pos.insert((p, o, s));
            st.osp.insert((o, s, p));
        }
        st
    }

    /// Number of distinct triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// `true` if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Executes a parsed query.
    pub fn query(&self, query: &Query) -> Result<ResultSet, QueryError> {
        crate::exec::execute(self, query)
    }

    /// Parses and executes a query string.
    pub fn query_str(&self, text: &str) -> Result<ResultSet, QueryError> {
        let parsed = se_sparql::parse_query(text)?;
        self.query(&parsed)
    }

    /// The term dictionary (for size accounting).
    pub fn dictionary(&self) -> &TermDict {
        &self.dict
    }

    /// Approximate heap bytes of the three indexes plus the dictionary
    /// (the Figure 11 metric). BTree nodes cost roughly 1.4× the entry
    /// payload in practice; each entry is counted at its payload size plus
    /// amortized node overhead.
    pub fn memory_footprint(&self) -> usize {
        let entry = 24usize; // (u64, u64, u64)
        let per_index = self.spo.len() * (entry + entry / 2);
        3 * per_index + self.dict.heap_size()
    }

    /// Serialized triple-data size (three indexes' worth of 24-byte keys),
    /// the Figure 10 analogue.
    pub fn triple_serialized_size(&self) -> usize {
        3 * self.spo.len() * 24
    }
}

impl TripleSource for MultiIndexStore {
    fn resolve(&self, term: &Term) -> Option<u64> {
        self.dict.id(term)
    }

    fn decode(&self, id: u64) -> Option<Term> {
        self.dict.term(id).cloned()
    }

    fn triples_matching(
        &self,
        s: Option<u64>,
        p: Option<u64>,
        o: Option<u64>,
    ) -> Vec<(u64, u64, u64)> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, 0)..=(s, p, u64::MAX))
                .copied()
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, 0, 0)..=(s, u64::MAX, u64::MAX))
                .copied()
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, 0)..=(p, o, u64::MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, 0, 0)..=(p, u64::MAX, u64::MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, 0, 0)..=(o, u64::MAX, u64::MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, 0)..=(o, s, u64::MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_rdf::Triple;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn sample() -> MultiIndexStore {
        let mut g = Graph::new();
        g.extend([
            Triple::new(iri("a"), iri("p"), iri("b")),
            Triple::new(iri("a"), iri("p"), iri("c")),
            Triple::new(iri("b"), iri("q"), iri("c")),
            Triple::new(iri("a"), iri("name"), Term::literal("A")),
        ]);
        MultiIndexStore::build(&g)
    }

    #[test]
    fn build_and_count() {
        let st = sample();
        assert_eq!(st.len(), 4);
        assert!(!st.is_empty());
    }

    #[test]
    fn all_access_paths() {
        let st = sample();
        let a = st.resolve(&iri("a")).unwrap();
        let p = st.resolve(&iri("p")).unwrap();
        let b = st.resolve(&iri("b")).unwrap();
        assert_eq!(st.triples_matching(Some(a), Some(p), None).len(), 2);
        assert_eq!(st.triples_matching(None, Some(p), Some(b)).len(), 1);
        assert_eq!(st.triples_matching(None, None, Some(b)).len(), 1);
        assert_eq!(st.triples_matching(Some(a), None, None).len(), 3);
        assert_eq!(st.triples_matching(None, None, None).len(), 4);
        assert_eq!(st.triples_matching(Some(a), Some(p), Some(b)).len(), 1);
        assert_eq!(st.triples_matching(Some(b), Some(p), Some(a)).len(), 0);
    }

    #[test]
    fn query_end_to_end() {
        let st = sample();
        let rs = st
            .query_str("SELECT ?o WHERE { <http://x/a> <http://x/p> ?o }")
            .unwrap();
        assert_eq!(rs.len(), 2);
        let rs = st
            .query_str(r#"SELECT ?s WHERE { ?s <http://x/name> "A" }"#)
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Some(iri("a")));
    }

    #[test]
    fn join_query() {
        let st = sample();
        let rs = st
            .query_str("SELECT ?x ?z WHERE { <http://x/a> <http://x/p> ?x . ?x <http://x/q> ?z }")
            .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn duplicate_triples_dedup() {
        let mut g = Graph::new();
        g.insert(Triple::new(iri("a"), iri("p"), iri("b")));
        g.insert(Triple::new(iri("a"), iri("p"), iri("b")));
        let st = MultiIndexStore::build(&g);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn sizes_reflect_three_indexes() {
        let st = sample();
        assert_eq!(st.triple_serialized_size(), 3 * 4 * 24);
        assert!(st.memory_footprint() > st.triple_serialized_size());
    }
}
