//! An on-disk B+tree over triple keys, built on the buffer pool.
//!
//! Keys are `(u64, u64, u64)` triple permutations (24 bytes, no values —
//! the index *is* the data, as in Jena TDB's triple indexes). Leaves are
//! chained for range scans; internal nodes hold separator keys. All page
//! access goes through [`crate::pager::BufferPool`], so a cold tree incurs
//! real disk reads — the structural property behind the paper's
//! disk-vs-memory latency comparisons.

use crate::pager::{BufferPool, PageId, PAGE_SIZE};
use std::io;

/// A 24-byte triple key.
pub type Key = (u64, u64, u64);

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const NO_PAGE: u64 = u64::MAX;

// Leaf layout: [tag u8][n u16][next u64][keys n*24]
const LEAF_HEADER: usize = 1 + 2 + 8;
/// Max keys per leaf.
pub const LEAF_CAP: usize = (PAGE_SIZE - LEAF_HEADER) / 24; // 170

// Internal layout: [tag u8][n u16][children (CAP+1)*u64][keys CAP*24]
const INT_CAP: usize = 127;
const INT_CHILDREN_OFF: usize = 1 + 2;
const INT_KEYS_OFF: usize = INT_CHILDREN_OFF + 8 * (INT_CAP + 1);

/// An on-disk B+tree of triple keys.
#[derive(Debug)]
pub struct BTree {
    root: PageId,
    len: u64,
}

fn read_u16(p: &[u8; PAGE_SIZE], off: usize) -> u16 {
    u16::from_le_bytes([p[off], p[off + 1]])
}

fn write_u16(p: &mut [u8; PAGE_SIZE], off: usize, v: u16) {
    p[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

fn read_u64(p: &[u8; PAGE_SIZE], off: usize) -> u64 {
    u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes"))
}

fn write_u64(p: &mut [u8; PAGE_SIZE], off: usize, v: u64) {
    p[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn read_key(p: &[u8; PAGE_SIZE], off: usize) -> Key {
    (
        read_u64(p, off),
        read_u64(p, off + 8),
        read_u64(p, off + 16),
    )
}

fn write_key(p: &mut [u8; PAGE_SIZE], off: usize, k: Key) {
    write_u64(p, off, k.0);
    write_u64(p, off + 8, k.1);
    write_u64(p, off + 16, k.2);
}

impl BTree {
    /// Creates an empty tree (allocates the root leaf).
    pub fn create(pool: &BufferPool) -> io::Result<Self> {
        let root = pool.allocate()?;
        pool.with_page_mut(root, |p| {
            p[0] = TAG_LEAF;
            write_u16(p, 1, 0);
            write_u64(p, 3, NO_PAGE);
        })?;
        Ok(Self { root, len: 0 })
    }

    /// Number of keys.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key`; returns `true` if it was new.
    pub fn insert(&mut self, pool: &BufferPool, key: Key) -> io::Result<bool> {
        match self.insert_rec(pool, self.root, key)? {
            InsertResult::Done(new) => {
                if new {
                    self.len += 1;
                }
                Ok(new)
            }
            InsertResult::Split(sep, right) => {
                // Grow a new root.
                let new_root = pool.allocate()?;
                let old_root = self.root;
                pool.with_page_mut(new_root, |p| {
                    p[0] = TAG_INTERNAL;
                    write_u16(p, 1, 1);
                    write_u64(p, INT_CHILDREN_OFF, old_root);
                    write_u64(p, INT_CHILDREN_OFF + 8, right);
                    write_key(p, INT_KEYS_OFF, sep);
                })?;
                self.root = new_root;
                self.len += 1;
                Ok(true)
            }
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, pool: &BufferPool, key: Key) -> io::Result<bool> {
        let mut page = self.root;
        loop {
            let next = pool.with_page(page, |p| {
                if p[0] == TAG_LEAF {
                    let n = read_u16(p, 1) as usize;
                    let found = leaf_keys(p, n).binary_search(&key).is_ok();
                    Err(found)
                } else {
                    Ok(descend_child(p, key))
                }
            })?;
            match next {
                Ok(child) => page = child,
                Err(found) => return Ok(found),
            }
        }
    }

    /// All keys in `[lo, hi)`, in order.
    pub fn range(&self, pool: &BufferPool, lo: Key, hi: Key) -> io::Result<Vec<Key>> {
        let mut out = Vec::new();
        // Descend to the leaf that may contain `lo`.
        let mut page = self.root;
        loop {
            let step = pool.with_page(page, |p| {
                if p[0] == TAG_LEAF {
                    None
                } else {
                    Some(descend_child(p, lo))
                }
            })?;
            match step {
                Some(child) => page = child,
                None => break,
            }
        }
        // Walk the leaf chain.
        let mut current = page;
        loop {
            let (next, done) = pool.with_page(current, |p| {
                let n = read_u16(p, 1) as usize;
                let mut done = false;
                for i in 0..n {
                    let k = read_key(p, LEAF_HEADER + i * 24);
                    if k >= hi {
                        done = true;
                        break;
                    }
                    if k >= lo {
                        out.push(k);
                    }
                }
                (read_u64(p, 3), done)
            })?;
            if done || next == NO_PAGE {
                break;
            }
            current = next;
        }
        Ok(out)
    }

    fn insert_rec(
        &mut self,
        pool: &BufferPool,
        page: PageId,
        key: Key,
    ) -> io::Result<InsertResult> {
        let tag = pool.with_page(page, |p| p[0])?;
        if tag == TAG_LEAF {
            return self.insert_leaf(pool, page, key);
        }
        let child = pool.with_page(page, |p| descend_child(p, key))?;
        match self.insert_rec(pool, child, key)? {
            InsertResult::Done(new) => Ok(InsertResult::Done(new)),
            InsertResult::Split(sep, right) => self.insert_internal(pool, page, sep, right),
        }
    }

    fn insert_leaf(
        &mut self,
        pool: &BufferPool,
        page: PageId,
        key: Key,
    ) -> io::Result<InsertResult> {
        // Read keys, insert in sorted position, split if over capacity.
        let (mut keys, next_leaf) = pool.with_page(page, |p| {
            let n = read_u16(p, 1) as usize;
            (leaf_keys(p, n), read_u64(p, 3))
        })?;
        match keys.binary_search(&key) {
            Ok(_) => return Ok(InsertResult::Done(false)),
            Err(pos) => keys.insert(pos, key),
        }
        if keys.len() <= LEAF_CAP {
            pool.with_page_mut(page, |p| write_leaf(p, &keys, next_leaf))?;
            return Ok(InsertResult::Done(true));
        }
        // Split: left keeps the lower half, right gets the upper half.
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let sep = right_keys[0];
        let right = pool.allocate()?;
        pool.with_page_mut(right, |p| {
            p[0] = TAG_LEAF;
            write_leaf(p, &right_keys, next_leaf);
        })?;
        pool.with_page_mut(page, |p| write_leaf(p, &keys, right))?;
        Ok(InsertResult::Split(sep, right))
    }

    fn insert_internal(
        &mut self,
        pool: &BufferPool,
        page: PageId,
        sep: Key,
        right_child: PageId,
    ) -> io::Result<InsertResult> {
        let (mut keys, mut children) = pool.with_page(page, |p| {
            let n = read_u16(p, 1) as usize;
            let keys: Vec<Key> = (0..n).map(|i| read_key(p, INT_KEYS_OFF + i * 24)).collect();
            let children: Vec<PageId> = (0..=n)
                .map(|i| read_u64(p, INT_CHILDREN_OFF + i * 8))
                .collect();
            (keys, children)
        })?;
        let pos = keys.partition_point(|k| *k < sep);
        keys.insert(pos, sep);
        children.insert(pos + 1, right_child);
        if keys.len() <= INT_CAP {
            pool.with_page_mut(page, |p| write_internal(p, &keys, &children))?;
            return Ok(InsertResult::Done(true));
        }
        // Split the internal node; the middle key moves up.
        let mid = keys.len() / 2;
        let up = keys[mid];
        let right_keys: Vec<Key> = keys[mid + 1..].to_vec();
        let right_children: Vec<PageId> = children[mid + 1..].to_vec();
        keys.truncate(mid);
        children.truncate(mid + 1);
        let right = pool.allocate()?;
        pool.with_page_mut(right, |p| {
            p[0] = TAG_INTERNAL;
            write_internal(p, &right_keys, &right_children);
        })?;
        pool.with_page_mut(page, |p| write_internal(p, &keys, &children))?;
        Ok(InsertResult::Split(up, right))
    }
}

enum InsertResult {
    Done(bool),
    Split(Key, PageId),
}

fn leaf_keys(p: &[u8; PAGE_SIZE], n: usize) -> Vec<Key> {
    (0..n).map(|i| read_key(p, LEAF_HEADER + i * 24)).collect()
}

fn write_leaf(p: &mut [u8; PAGE_SIZE], keys: &[Key], next: PageId) {
    p[0] = TAG_LEAF;
    write_u16(p, 1, keys.len() as u16);
    write_u64(p, 3, next);
    for (i, &k) in keys.iter().enumerate() {
        write_key(p, LEAF_HEADER + i * 24, k);
    }
}

fn write_internal(p: &mut [u8; PAGE_SIZE], keys: &[Key], children: &[PageId]) {
    debug_assert_eq!(children.len(), keys.len() + 1);
    p[0] = TAG_INTERNAL;
    write_u16(p, 1, keys.len() as u16);
    for (i, &c) in children.iter().enumerate() {
        write_u64(p, INT_CHILDREN_OFF + i * 8, c);
    }
    for (i, &k) in keys.iter().enumerate() {
        write_key(p, INT_KEYS_OFF + i * 24, k);
    }
}

/// Child to descend into for `key`: the first child whose separator exceeds
/// the key.
fn descend_child(p: &[u8; PAGE_SIZE], key: Key) -> PageId {
    let n = read_u16(p, 1) as usize;
    let mut idx = n;
    for i in 0..n {
        if key < read_key(p, INT_KEYS_OFF + i * 24) {
            idx = i;
            break;
        }
    }
    read_u64(p, INT_CHILDREN_OFF + idx * 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn pool(name: &str) -> (BufferPool, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("se-btree-test-{name}-{}", std::process::id()));
        (BufferPool::new(Pager::create(&path).unwrap(), 64), path)
    }

    #[test]
    fn insert_and_contains() {
        let (pool, path) = pool("basic");
        let mut t = BTree::create(&pool).unwrap();
        assert!(t.insert(&pool, (1, 2, 3)).unwrap());
        assert!(!t.insert(&pool, (1, 2, 3)).unwrap());
        assert!(t.insert(&pool, (0, 0, 0)).unwrap());
        assert_eq!(t.len(), 2);
        assert!(t.contains(&pool, (1, 2, 3)).unwrap());
        assert!(!t.contains(&pool, (1, 2, 4)).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_sorted_inserts_split_correctly() {
        let (pool, path) = pool("sorted");
        let mut t = BTree::create(&pool).unwrap();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(&pool, (i / 100, i % 100, i)).unwrap();
        }
        assert_eq!(t.len(), n);
        let all = t.range(&pool, (0, 0, 0), (u64::MAX, 0, 0)).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0] < w[1]), "range output sorted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_inserts_match_btreeset() {
        use std::collections::BTreeSet;
        let (pool, path) = pool("random");
        let mut t = BTree::create(&pool).unwrap();
        let mut model = BTreeSet::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..4_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 50, (x >> 8) % 50, (x >> 16) % 50);
            assert_eq!(t.insert(&pool, key).unwrap(), model.insert(key));
        }
        assert_eq!(t.len(), model.len() as u64);
        let lo = (10, 0, 0);
        let hi = (20, 0, 0);
        let got = t.range(&pool, lo, hi).unwrap();
        let expected: Vec<Key> = model.range(lo..hi).copied().collect();
        assert_eq!(got, expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_prefix_scan() {
        let (pool, path) = pool("prefix");
        let mut t = BTree::create(&pool).unwrap();
        for p in 0..5u64 {
            for s in 0..40u64 {
                t.insert(&pool, (p, s, s * 2)).unwrap();
            }
        }
        // All keys with p == 3.
        let got = t.range(&pool, (3, 0, 0), (4, 0, 0)).unwrap();
        assert_eq!(got.len(), 40);
        assert!(got.iter().all(|k| k.0 == 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_tree_range() {
        let (pool, path) = pool("empty");
        let t = BTree::create(&pool).unwrap();
        assert!(t.is_empty());
        assert!(t.range(&pool, (0, 0, 0), (9, 9, 9)).unwrap().is_empty());
        assert!(!t.contains(&pool, (1, 1, 1)).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // A 2-frame pool forces constant eviction; correctness must hold.
        let mut path = std::env::temp_dir();
        path.push(format!("se-btree-test-tiny-{}", std::process::id()));
        let pool = BufferPool::new(Pager::create(&path).unwrap(), 2);
        let mut t = BTree::create(&pool).unwrap();
        for i in 0..2_000u64 {
            t.insert(&pool, (i, i, i)).unwrap();
        }
        let all = t.range(&pool, (0, 0, 0), (u64::MAX, 0, 0)).unwrap();
        assert_eq!(all.len(), 2_000);
        // Sorted insertion keeps only the rightmost path hot; the full
        // range scan afterwards must re-read every leaf through the tiny
        // pool (≈ 2000 / LEAF_CAP leaves).
        let stats = pool.stats();
        assert!(
            stats.misses as usize > 2_000 / LEAF_CAP,
            "scan must miss through a 2-frame pool"
        );
        std::fs::remove_file(&path).ok();
    }
}
