//! Replication agreement: a follower replaying the leader's WAL feed
//! answers every triple-pattern shape identically to the leader, to a
//! local single-threaded replay of the same batches, and to a
//! from-scratch rebuild — at the same epoch, across deletions,
//! compactions, a leader checkpoint that truncates WAL history (forcing
//! the snapshot bootstrap path), and a forced feed drop/re-sync.

use se_datagen::water::{generate_stream, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_rdf::{Graph, Term, Triple};
use se_server::{Client, Replica, ReplicaConfig, Server, ServerConfig};
use se_sparql::{QueryOptions, ResultSet};
use se_stream::{CompactionPolicy, ShardedHybridStore, StreamSession, StreamStore, WalConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("se-repl-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

/// Queries covering every TP shape the executor distinguishes — the
/// same 13 shapes `tests/stream_agreement.rs` holds the engines to.
fn shape_queries() -> Vec<(&'static str, String, QueryOptions)> {
    let prefixes = "PREFIX sosa: <http://www.w3.org/ns/sosa/> \
                    PREFIX qudt: <http://qudt.org/schema/qudt/> ";
    let q = |text: &str| format!("{prefixes}{text}");
    vec![
        ("anomaly", water_anomaly_query(), QueryOptions::default()),
        (
            "scan",
            q("SELECT ?s ?o WHERE { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
        (
            "objects",
            q("SELECT ?o WHERE { <http://engie.example/station/1> sosa:hosts ?o }"),
            QueryOptions::default(),
        ),
        (
            "subjects",
            q("SELECT ?s WHERE { ?s qudt:unit <http://qudt.org/vocab/unit/BAR> }"),
            QueryOptions::default(),
        ),
        (
            "membership",
            q("SELECT ?s WHERE { \
               <http://engie.example/station/1> sosa:hosts <http://engie.example/sensor/pressure1> . \
               ?s a sosa:Sensor }"),
            QueryOptions::default(),
        ),
        (
            "literal-const",
            q("SELECT ?o WHERE { ?o sosa:resultTime \
               \"2020-11-01T00:00:00Z\"^^<http://www.w3.org/2001/XMLSchema#dateTime> }"),
            QueryOptions::default(),
        ),
        (
            "type-reasoned",
            q("SELECT ?u WHERE { ?u a qudt:PressureUnit }"),
            QueryOptions::default(),
        ),
        (
            "type-exact",
            q("SELECT ?u WHERE { ?u a qudt:PressureUnit }"),
            QueryOptions::without_reasoning(),
        ),
        (
            "type-var",
            q("SELECT ?c WHERE { <http://engie.example/sensor/pressure1> a ?c }"),
            QueryOptions::default(),
        ),
        (
            "type-scan",
            q("SELECT ?s ?c WHERE { ?s a ?c }"),
            QueryOptions::default(),
        ),
        (
            "star-plain",
            q("SELECT ?s ?r WHERE { ?s a sosa:Observation . ?s sosa:hasResult ?r }"),
            QueryOptions::without_reasoning(),
        ),
        (
            "union-groups",
            q("SELECT ?s ?o WHERE { ?s sosa:hosts ?o } UNION { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
        (
            "distinct-subjects",
            q("SELECT DISTINCT ?s WHERE { ?s sosa:observes ?o }"),
            QueryOptions::default(),
        ),
    ]
}

/// Polls both nodes until the follower has replayed up to the leader's
/// epoch. Returns the common epoch.
fn wait_caught_up(leader: &mut Client, follower: &mut Client) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let l = leader.stats().unwrap().epoch;
        let f = follower.stats().unwrap().epoch;
        if l == f {
            return l;
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at epoch {f}, leader at {l}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Every shape answers identically on leader, follower, the local
/// replay session, and a from-scratch rebuild — all pinned to `epoch`.
fn assert_shapes_agree(
    leader: &mut Client,
    follower: &mut Client,
    replay: &StreamSession<ShardedHybridStore>,
    epoch: u64,
    phase: &str,
) {
    let rebuilt =
        ShardedHybridStore::build(&water_ontology(), &replay.store().materialize(), 2).unwrap();
    for (id, text, opts) in shape_queries() {
        let l = leader.query(&text, &opts).unwrap();
        let f = follower.query(&text, &opts).unwrap();
        assert_eq!(l.epoch, epoch, "{phase}: leader '{id}' answered off-epoch");
        assert_eq!(
            f.epoch, epoch,
            "{phase}: follower '{id}' answered off-epoch"
        );
        let want = normalize(&l.results);
        assert_eq!(
            normalize(&f.results),
            want,
            "{phase}: query '{id}' disagrees between leader and follower"
        );
        let local = se_sparql::execute_query(replay.store(), &text, &opts).unwrap();
        assert_eq!(
            normalize(&local),
            want,
            "{phase}: query '{id}' disagrees between leader and local replay"
        );
        let fresh = se_sparql::execute_query(&rebuilt, &text, &opts).unwrap();
        assert_eq!(
            normalize(&fresh),
            want,
            "{phase}: query '{id}' disagrees between follower and rebuild"
        );
    }
}

#[test]
fn replica_agrees_across_checkpoint_compaction_and_resync() {
    let dir = scratch("agree");
    let onto = water_ontology();
    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.3,
        seed: 97,
    };
    // Retention window 3 → deletions ride along from batch 3 on.
    let batches = generate_stream(&cfg, 12, 3);
    // Overlay threshold sized to trigger compactions mid-stream.
    let policy = CompactionPolicy { max_overlay: 90 };

    let mut store = ShardedHybridStore::build(&onto, &Graph::new(), 3)
        .unwrap()
        .with_policy(policy);
    // Local ground truth: the same batches through an ordinary session.
    let mut replay = StreamSession::new(
        ShardedHybridStore::build(&onto, &Graph::new(), 2)
            .unwrap()
            .with_policy(policy),
    );

    // Epochs 1..=3 land before the WAL attaches; `attach_wal` then
    // checkpoints the store, so the log never covers them. A follower
    // starting from epoch 0 therefore CANNOT be served records and must
    // take the snapshot bootstrap path.
    for batch in &batches[..3] {
        store.apply_batch(&batch.inserts, &batch.deletes).unwrap();
        replay.apply_batch(&batch.inserts, &batch.deletes).unwrap();
    }
    store.attach_wal(&dir, WalConfig::default()).unwrap();

    let server = Server::start(
        store,
        "127.0.0.1:0",
        ServerConfig {
            tick: Duration::from_millis(2),
        },
    )
    .unwrap();
    let replica = Replica::start(
        water_ontology(),
        server.addr(),
        "127.0.0.1:0",
        ReplicaConfig {
            shards: 2,
            reconnect: Duration::from_millis(50),
        },
    )
    .unwrap();

    let mut leader = Client::connect(server.addr()).unwrap();
    let mut follower = Client::connect(replica.addr()).unwrap();

    // A live subscription ON THE FOLLOWER: replicas push continuous
    // answers exactly like the leader does.
    let mut sub = Client::connect(replica.addr()).unwrap();
    sub.subscribe(
        "scan",
        "PREFIX sosa: <http://www.w3.org/ns/sosa/> SELECT ?s ?o WHERE { ?s sosa:observes ?o }",
        &QueryOptions::default(),
    )
    .unwrap();

    // Phase A — stream through the snapshot-bootstrapped follower.
    let mut deleted = 0u64;
    for batch in &batches[3..8] {
        deleted += leader
            .ingest(&batch.inserts, &batch.deletes)
            .unwrap()
            .deleted;
        replay.apply_batch(&batch.inserts, &batch.deletes).unwrap();
    }
    let epoch = wait_caught_up(&mut leader, &mut follower);
    assert_eq!(epoch, 8, "3 direct + 5 streamed batches");
    assert_shapes_agree(&mut leader, &mut follower, &replay, epoch, "post-bootstrap");

    // The follower's subscriber got its seed frame from replayed ticks.
    let first = sub.next_push().unwrap();
    assert!(first.initial, "first push is the full answer set");

    // Phase B — force a feed drop; the follower must re-sync (now via
    // WAL records: the log covers its epoch) and keep agreeing.
    replica.force_resync();
    for batch in &batches[8..] {
        deleted += leader
            .ingest(&batch.inserts, &batch.deletes)
            .unwrap()
            .deleted;
        replay.apply_batch(&batch.inserts, &batch.deletes).unwrap();
    }
    let epoch = wait_caught_up(&mut leader, &mut follower);
    assert_eq!(epoch, 12);
    assert_shapes_agree(&mut leader, &mut follower, &replay, epoch, "post-resync");
    assert!(deleted > 0, "the stream must exercise deletions");

    // The scenario really covered compaction, bootstrap and re-sync.
    let ls = leader.stats().unwrap();
    assert!(ls.compactions > 0, "the stream must trigger compactions");
    assert!(ls.replicas >= 1, "the feed must be attached");
    assert_eq!(
        ls.repl_snapshots_served, 1,
        "exactly the initial attach needed a snapshot bootstrap"
    );
    assert!(
        ls.repl_records_shipped >= 9,
        "5 + 4 live ticks plus the re-sync catch-up records"
    );
    let fs = follower.stats().unwrap();
    assert!(fs.repl_resyncs >= 1, "the forced drop must be counted");
    assert_eq!(fs.triples, ls.triples);

    sub.shutdown().unwrap();
    replica.join();
    leader.shutdown().unwrap();
    server.join();
    cleanup(&dir);
}

/// With the WAL attached from epoch 0, a late-joining follower is
/// caught up purely from records — no snapshot bootstrap — and a
/// replica refuses ingest instead of forking history.
#[test]
fn follower_catches_up_from_wal_records_and_stays_read_only() {
    let dir = scratch("records");
    let onto = water_ontology();
    let mut store = ShardedHybridStore::build(&onto, &Graph::new(), 2).unwrap();
    store.attach_wal(&dir, WalConfig::default()).unwrap();
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut leader = Client::connect(server.addr()).unwrap();

    let triple = |i: usize| {
        Triple::new(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::iri(format!("http://x/o{i}")),
        )
    };
    for i in 0..5 {
        leader
            .ingest(&Graph::from_triples([triple(i)]), &Graph::new())
            .unwrap();
    }

    let replica = Replica::start(
        water_ontology(),
        server.addr(),
        "127.0.0.1:0",
        ReplicaConfig {
            shards: 2,
            reconnect: Duration::from_millis(50),
        },
    )
    .unwrap();
    let mut follower = Client::connect(replica.addr()).unwrap();
    let epoch = wait_caught_up(&mut leader, &mut follower);
    assert_eq!(epoch, 5);

    // Live shipping after catch-up.
    for i in 5..7 {
        leader
            .ingest(&Graph::from_triples([triple(i)]), &Graph::new())
            .unwrap();
    }
    let epoch = wait_caught_up(&mut leader, &mut follower);
    assert_eq!(epoch, 7);
    let rows = follower
        .query(
            "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rows.results.len(), 7);
    assert_eq!(rows.epoch, 7);

    // Pure record catch-up: the WAL covered epoch 0 onwards.
    let ls = leader.stats().unwrap();
    assert_eq!(ls.repl_snapshots_served, 0);
    assert!(ls.repl_records_shipped >= 7);

    // Writes belong on the leader.
    let err = follower
        .ingest(&Graph::from_triples([triple(99)]), &Graph::new())
        .unwrap_err();
    assert!(
        err.to_string().contains("read-only"),
        "unexpected refusal: {err}"
    );
    // The refusal leaves the connection usable.
    assert_eq!(follower.stats().unwrap().epoch, 7);

    follower.shutdown().unwrap();
    replica.join();
    leader.shutdown().unwrap();
    server.join();
    cleanup(&dir);
}
