//! End-to-end server round trip: concurrent clients ingesting, point
//! querying and subscribing over TCP, checked against a single-threaded
//! replay on a local store.

use se_datagen::water::{generate_stream, WaterConfig};
use se_datagen::workload::water_anomaly_query;
use se_ontology::water_ontology;
use se_rdf::{Graph, Term, Triple};
use se_server::{Client, Server, ServerConfig};
use se_sparql::{QueryOptions, ResultSet};
use se_stream::{ShardedHybridStore, StreamSession, WalConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("se-server-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

fn normalize(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

fn iri(s: String) -> Term {
    Term::iri(s)
}

/// Client `k`'s disjoint partition: `n` triples over its own predicate,
/// so concurrent ingest commutes and the final state is replay-equal.
fn partition_batch(k: usize, batch: usize, per_batch: usize) -> Graph {
    Graph::from_triples((0..per_batch).map(|j| {
        let i = batch * per_batch + j;
        Triple::new(
            iri(format!("http://x/s{k}_{i}")),
            iri(format!("http://x/p{k}")),
            iri(format!("http://x/o{k}_{i}")),
        )
    }))
}

fn partition_query(k: usize) -> String {
    format!("SELECT ?s ?o WHERE {{ ?s <http://x/p{k}> ?o }}")
}

const WRITERS: usize = 4;
const BATCHES_PER_WRITER: usize = 6;
const PER_BATCH: usize = 5;

#[test]
fn concurrent_clients_agree_with_single_threaded_replay() {
    let ontology = water_ontology();
    let store = ShardedHybridStore::build(&ontology, &Graph::new(), 4).unwrap();
    let server = Server::start(
        store,
        "127.0.0.1:0",
        ServerConfig {
            tick: Duration::from_millis(2),
        },
    )
    .unwrap();
    let addr = server.addr();
    let opts = QueryOptions::default();

    // ---- Phase A: 4 writers ingest disjoint partitions concurrently,
    // while a reader hammers point queries against snapshots.
    let reader = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let opts = QueryOptions::default();
        let mut last_epoch = 0;
        let mut last_rows = 0;
        for _ in 0..60 {
            let rows = c.query(&partition_query(0), &opts).unwrap();
            // Snapshots are immutable and published in apply order:
            // epochs and (insert-only) row counts never move backwards.
            assert!(rows.epoch >= last_epoch, "epoch went backwards");
            assert!(rows.results.len() >= last_rows, "rows went backwards");
            last_epoch = rows.epoch;
            last_rows = rows.results.len();
        }
    });
    let writers: Vec<_> = (0..WRITERS)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut acks = Vec::new();
                for b in 0..BATCHES_PER_WRITER {
                    let ack = c
                        .ingest(&partition_batch(k, b, PER_BATCH), &Graph::new())
                        .unwrap();
                    assert!(ack.coalesced >= 1);
                    acks.push(ack);
                }
                // Acks are issued post-apply: this client's epochs are
                // strictly increasing even under coalescing.
                assert!(acks.windows(2).all(|w| w[1].epoch > w[0].epoch));
                c
            })
        })
        .collect();
    let mut clients: Vec<Client> = writers.into_iter().map(|w| w.join().unwrap()).collect();
    reader.join().unwrap();

    // Replay the same data single-threaded; every partition query must
    // agree (concurrent group commit changed batching, not content).
    let mut replay =
        StreamSession::new(ShardedHybridStore::build(&ontology, &Graph::new(), 4).unwrap());
    for k in 0..WRITERS {
        for b in 0..BATCHES_PER_WRITER {
            replay
                .apply_batch(&partition_batch(k, b, PER_BATCH), &Graph::new())
                .unwrap();
        }
    }
    for (k, c) in clients.iter_mut().enumerate() {
        let got = c.query(&partition_query(k), &opts).unwrap();
        assert_eq!(got.results.len(), BATCHES_PER_WRITER * PER_BATCH);
        let want = se_sparql::execute_query(replay.store(), &partition_query(k), &opts).unwrap();
        assert_eq!(normalize(&got.results), normalize(&want));
    }

    // ---- Phase B: one client holds two subscriptions — the anomaly
    // query (FILTER → full fallback) and a bare pattern scan (delta
    // path) — while another streams the water batches. One batch per
    // ack-gated request means one tick per batch. The server pushes
    // each full set once, then only per-tick changes, and skips
    // unchanged ticks entirely; the client's reconstructed view must
    // match the replay's full evaluation anyway.
    let scan_query = "SELECT ?s ?o WHERE { ?s <http://www.w3.org/ns/sosa/observes> ?o }";
    let mut sub = Client::connect(addr).unwrap();
    sub.subscribe("alerts", &water_anomaly_query(), &opts)
        .unwrap();
    sub.subscribe("scan", scan_query, &opts).unwrap();
    replay
        .register_query("alerts", &water_anomaly_query(), opts.clone())
        .unwrap();
    replay
        .register_query("scan", scan_query, opts.clone())
        .unwrap();

    let cfg = WaterConfig {
        stations: 2,
        rounds: 1,
        anomaly_rate: 0.4,
        seed: 11,
    };
    let stream = generate_stream(&cfg, 8, 3);
    let feeder = &mut clients[0];
    let mut saw_alert = false;
    let mut saw_delta_changes = false;
    let mut primed = std::collections::HashSet::new();
    for batch in &stream {
        let ack = feeder.ingest(&batch.inserts, &batch.deletes).unwrap();
        let outcome = replay.apply_batch(&batch.inserts, &batch.deletes).unwrap();
        // The server walks results in registration order and pushes a
        // frame only for the initial set or a changed tick.
        for want in &outcome.results {
            let first = primed.insert(want.id.clone());
            if !first && want.unchanged() {
                continue;
            }
            let push = sub.next_push().unwrap();
            assert_eq!(push.id, want.id);
            assert_eq!(push.epoch, ack.epoch);
            assert_eq!(push.initial, first, "frame kind diverged at {}", ack.epoch);
            assert_eq!(
                normalize(&push.results),
                normalize(&want.results),
                "{} push at epoch {} diverged from the replay",
                push.id,
                push.epoch
            );
            if !first {
                assert_eq!(normalize(&push.added), normalize(&want.added));
                assert_eq!(normalize(&push.removed), normalize(&want.removed));
                saw_delta_changes |= want.incremental && !push.added.is_empty();
            }
            if want.id == "alerts" {
                saw_alert |= !push.results.rows.is_empty();
            }
        }
    }
    assert!(saw_alert, "the stream produced no anomaly to compare");
    assert!(saw_delta_changes, "the scan never exercised the delta path");

    // ---- Phase C: stats reflect the session; shutdown stops the server.
    let stats = sub.stats().unwrap();
    assert_eq!(stats.subscriptions, 2);
    // Phase A's 24 requests ran as anywhere between 6 ticks (maximal
    // coalescing: each writer's requests are ack-gated, so at least
    // BATCHES_PER_WRITER ticks) and 24 (none); phase B added exactly one
    // tick per water batch.
    let phase_b = stream.len() as u64;
    assert!(stats.epoch >= BATCHES_PER_WRITER as u64 + phase_b);
    assert!(stats.epoch <= (WRITERS * BATCHES_PER_WRITER) as u64 + phase_b);
    assert!(stats.triples > 0);
    // "scan" seeds once then rides the delta path; "alerts" (FILTER)
    // re-evaluates in full every tick. The replay session counted the
    // identical work, delta sizes included.
    assert_eq!(stats.incremental_evals, phase_b - 1);
    assert_eq!(stats.full_evals, phase_b + 1);
    let replayed = replay.stream_stats();
    assert_eq!(stats.incremental_evals, replayed.incremental_evals);
    assert_eq!(stats.full_evals, replayed.full_evals);
    assert_eq!(stats.delta_added, replayed.delta_added);
    assert_eq!(stats.delta_removed, replayed.delta_removed);
    assert!(stats.delta_added > 0);
    sub.shutdown().unwrap();
    server.join();
}

#[test]
fn malformed_and_unknown_requests_leave_the_connection_usable() {
    let store = ShardedHybridStore::build(&water_ontology(), &Graph::new(), 2).unwrap();
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();

    // A bad query surfaces as a server error, not a hangup.
    let err = c.query("SELECT WHERE garbage", &QueryOptions::default());
    assert!(err.is_err());

    // The connection still works afterwards.
    let ack = c
        .ingest(
            &Graph::from_triples([Triple::new(
                Term::iri("http://x/s"),
                Term::iri("http://x/p"),
                Term::iri("http://x/o"),
            )]),
            &Graph::new(),
        )
        .unwrap();
    assert_eq!(ack.inserted, 1);
    let rows = c
        .query(
            "SELECT ?o WHERE { <http://x/s> <http://x/p> ?o }",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rows.results.len(), 1);
    assert!(rows.epoch >= 1);

    c.shutdown().unwrap();
    server.join();
}

/// With a WAL attached under the default `EveryBatch` policy, an ingest
/// ack *is* a durability receipt: after `SHUTDOWN` (or a crash — the
/// crash matrix in `tests/crash_recovery.rs` covers that side), a
/// restarted store recovers exactly the acked epoch, and a new server
/// over it serves the same data.
#[test]
fn server_restart_recovers_every_acked_batch() {
    let dir = scratch("restart");
    let ontology = water_ontology();
    let mut store = ShardedHybridStore::build(&ontology, &Graph::new(), 2).unwrap();
    store.attach_wal(&dir, WalConfig::default()).unwrap();
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // An idle subscriber: a never-matching query gets its empty initial
    // frame on the first tick and then no traffic at all, so its
    // connection thread sits in a frame read. Shutdown must still
    // complete promptly and close this connection (the bounded-poll
    // loop in the server).
    let mut idle = Client::connect(addr).unwrap();
    idle.subscribe(
        "quiet",
        "SELECT ?s ?o WHERE { ?s <http://x/never> ?o }",
        &QueryOptions::default(),
    )
    .unwrap();

    let mut c = Client::connect(addr).unwrap();
    let mut last_acked = 0;
    for b in 0..5 {
        let ack = c
            .ingest(&partition_batch(0, b, PER_BATCH), &Graph::new())
            .unwrap();
        last_acked = ack.epoch;
    }
    let initial = idle.next_push().unwrap();
    assert!(initial.initial && initial.results.rows.is_empty());
    c.shutdown().unwrap();
    server.join();

    // The idle subscriber observes the shutdown as a closed connection
    // — within its read timeout, not as a hang or a timeout error.
    idle.set_read_timeout(Some(Duration::from_secs(10)));
    let err = idle.next_push().unwrap_err();
    assert!(
        !Client::is_timeout(&err),
        "idle connection was not closed by shutdown: {err}"
    );

    // Restart: manifest + WAL replay lands exactly on the acked epoch.
    let recovered = ShardedHybridStore::load(&dir, &ontology).unwrap();
    assert_eq!(recovered.epoch(), last_acked);

    let server = Server::start(recovered, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let rows = c
        .query(&partition_query(0), &QueryOptions::default())
        .unwrap();
    assert_eq!(rows.results.len(), 5 * PER_BATCH);
    // And the recovered server keeps taking (and logging) new batches.
    let ack = c
        .ingest(&partition_batch(0, 5, PER_BATCH), &Graph::new())
        .unwrap();
    assert_eq!(ack.epoch, last_acked + 1);
    c.shutdown().unwrap();
    server.join();
    cleanup(&dir);
}

/// The server QUERY hot path performs zero SPARQL parsing on a plan-
/// cache hit — counter-verified: repeated (prepared) queries bump only
/// `plan_hits`, a same-shape query with different constants compiles
/// nothing new, and the counters travel the wire through STATS.
#[test]
fn repeated_queries_hit_the_plan_cache_with_zero_parsing() {
    let store = ShardedHybridStore::build(&water_ontology(), &Graph::new(), 2).unwrap();
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 0..2 {
        c.ingest(&partition_batch(k, 0, PER_BATCH), &Graph::new())
            .unwrap();
    }
    let opts = QueryOptions::default();
    let baseline = c.stats().unwrap();
    assert_eq!(baseline.plan_hits, 0, "no queries ran yet");
    assert_eq!(baseline.plan_misses, 0);

    // First execution: one text-level miss, one compile. The prepared
    // frame is encoded once and reused byte-identically after that.
    let prepared = Client::prepare(&partition_query(0), &opts).unwrap();
    let first = c.query_prepared(&prepared).unwrap();
    assert_eq!(first.results.len(), PER_BATCH);
    for _ in 0..5 {
        let again = c.query_prepared(&prepared).unwrap();
        assert_eq!(normalize(&again.results), normalize(&first.results));
    }
    let stats = c.stats().unwrap();
    assert_eq!(stats.plan_misses, 1, "only the cold run parsed");
    assert_eq!(stats.plan_hits, 5, "every repeat was a zero-parse hit");
    assert_eq!(stats.plan_compiles, 1);

    // Two queries differing only in a constant subject share one shape:
    // each misses at the text level (parsed once), but only the first
    // compiles — the second binds its constant into the cached plan,
    // and each still gets its own answer.
    let point = |i: usize| format!("SELECT ?o WHERE {{ <http://x/s0_{i}> <http://x/p0> ?o }}");
    let r0 = c.query(&point(0), &opts).unwrap();
    let r1 = c.query(&point(1), &opts).unwrap();
    assert_eq!((r0.results.len(), r1.results.len()), (1, 1));
    assert_ne!(
        normalize(&r0.results),
        normalize(&r1.results),
        "shared plan must bind each query's own constant"
    );
    let stats = c.stats().unwrap();
    assert_eq!(stats.plan_misses, 3);
    assert_eq!(stats.plan_compiles, 2, "shape shared, one compile for both");
    assert_eq!(stats.plan_evictions, 0);
    assert_eq!(stats.plan_recosts, 0);
    c.shutdown().unwrap();
    server.join();
}

/// The client's opt-in read timeout: waiting for a push that never
/// comes fails with a typed, retryable timeout instead of blocking
/// forever — and the connection stays fully usable afterwards.
#[test]
fn client_read_timeout_is_typed_and_retryable() {
    let store = ShardedHybridStore::build(&water_ontology(), &Graph::new(), 2).unwrap();
    let server = Server::start(store, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    c.subscribe(
        "quiet",
        "SELECT ?s ?o WHERE { ?s <http://x/never> ?o }",
        &QueryOptions::default(),
    )
    .unwrap();
    // One tick to flush the subscription's (empty) initial frame.
    c.ingest(
        &Graph::from_triples([Triple::new(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        )]),
        &Graph::new(),
    )
    .unwrap();
    let _initial = c.next_push().unwrap();

    // No further pushes are coming: the bounded wait times out with an
    // error the caller can identify and act on.
    c.set_read_timeout(Some(Duration::from_millis(50)));
    let err = c.next_push().unwrap_err();
    assert!(Client::is_timeout(&err), "expected a timeout, got: {err}");

    // Nothing of the next frame was consumed: the same connection still
    // serves requests (and their replies are not misframed).
    let rows = c
        .query(
            "SELECT ?s WHERE { ?s <http://x/p> ?s }",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(rows.results.len(), 0);
    c.shutdown().unwrap();
    server.join();
}
