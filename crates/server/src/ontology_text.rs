//! The plain line format both binaries accept for `--ontology` (offline
//! — no RDF parser dependency): one declaration per line, `#` comments
//! allowed.
//!
//! ```text
//! class    <iri> [<super-iri>]
//! property <iri> [<super-iri>]
//! oprop    <iri>        # object property
//! dprop    <iri>        # datatype property
//! domain   <prop> <class>
//! range    <prop> <class>
//! ```

use se_ontology::Ontology;

/// Parses the line format above. Errors carry the 1-based line number.
pub fn parse_ontology(text: &str) -> Result<Ontology, String> {
    let mut o = Ontology::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let a = parts.next();
        let b = parts.next();
        match kind {
            "class" => {
                o.add_class(need(a, kind, lineno)?, b.unwrap_or(""));
            }
            "property" => {
                o.add_property(need(a, kind, lineno)?, b.unwrap_or(""));
            }
            "oprop" => {
                o.add_object_property(need(a, kind, lineno)?);
            }
            "dprop" => {
                o.add_datatype_property(need(a, kind, lineno)?);
            }
            "domain" => {
                o.add_domain(need(a, kind, lineno)?, need(b, kind, lineno)?);
            }
            "range" => {
                o.add_range(need(a, kind, lineno)?, need(b, kind, lineno)?);
            }
            other => {
                return Err(format!(
                    "line {}: unknown declaration '{other}'",
                    lineno + 1
                ))
            }
        }
    }
    Ok(o)
}

fn need<'a>(field: Option<&'a str>, kind: &str, lineno: usize) -> Result<&'a str, String> {
    field.ok_or_else(|| format!("line {}: '{kind}' needs an IRI", lineno + 1))
}

/// Reads and parses an `--ontology` file; `None` falls back to the
/// built-in water-network demo ontology.
pub fn load_ontology(path: Option<&str>) -> Result<Ontology, String> {
    match path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_ontology(&text).map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(se_ontology::water_ontology()),
    }
}
