//! A blocking client for the se-server wire protocol, used by tests,
//! examples and benches.
//!
//! Subscription pushes arrive on the same stream as request replies, so
//! a push observed while waiting for a reply is queued and surfaced
//! later through [`Client::next_push`].

use crate::protocol::{self as proto, read_frame, write_frame};
use se_rdf::Graph;
use se_sds::{ReadBin, WriteBin};
use se_sparql::{QueryOptions, ResultSet};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The inner error of every timeout the client reports: a configured
/// [`Client::set_read_timeout`] elapsed before a frame arrived. The
/// connection is still synchronized (nothing of the next frame was
/// consumed), so the same call can simply be retried. Test with
/// [`Client::is_timeout`] rather than matching [`io::ErrorKind`] — the
/// kind of a timeout differs across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadTimedOut;

impl fmt::Display for ReadTimedOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "read timed out before a frame arrived")
    }
}

impl std::error::Error for ReadTimedOut {}

/// The ack of one ingest request: aggregate accounting for the whole
/// group-commit tick the request rode in.
#[derive(Debug, Clone, Copy)]
pub struct IngestAck {
    /// Store epoch after the tick.
    pub epoch: u64,
    /// Effective insertions across the tick.
    pub inserted: u64,
    /// Effective deletions across the tick.
    pub deleted: u64,
    /// No-op operations across the tick.
    pub noops: u64,
    /// Ingest requests coalesced into the tick (≥ 1, includes ours).
    pub coalesced: u32,
    /// Whether the tick triggered a compaction.
    pub compacted: bool,
}

/// A point-query answer, stamped with the snapshot epoch it saw.
#[derive(Debug, Clone)]
pub struct Rows {
    /// Epoch of the snapshot the query executed against.
    pub epoch: u64,
    /// The answer set.
    pub results: ResultSet,
}

/// One pushed continuous-query answer.
///
/// The wire carries either a full frame (a subscription's first push)
/// or a changes frame (added/removed rows for one tick); the client
/// folds change frames into a per-subscription materialized view, so
/// every `Push` exposes **both** the tick's changes and the full
/// answer set they produce.
#[derive(Debug, Clone)]
pub struct Push {
    /// The subscription id the answer belongs to.
    pub id: String,
    /// Store epoch after the batch that produced it.
    pub epoch: u64,
    /// Whether this was the subscription's initial full frame.
    pub initial: bool,
    /// Rows that entered the answer set this tick (the whole set on the
    /// initial frame).
    pub added: ResultSet,
    /// Rows that left the answer set this tick.
    pub removed: ResultSet,
    /// The full answer set over the post-batch state, reconstructed
    /// from the change stream.
    pub results: ResultSet,
}

/// Server counters, as answered by a `STATS` request.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Store epoch (group-commit ticks applied).
    pub epoch: u64,
    /// Triples visible in the live store.
    pub triples: u64,
    /// Snapshots currently pinning store resources.
    pub live_pins: u64,
    /// Snapshots taken over the store's lifetime.
    pub snapshots: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Active continuous-query subscriptions.
    pub subscriptions: u64,
    /// Continuous-query evaluations served by the delta path.
    pub incremental_evals: u64,
    /// Continuous-query full (re-)evaluations.
    pub full_evals: u64,
    /// Net triples added across all captured batch deltas.
    pub delta_added: u64,
    /// Net triples removed across all captured batch deltas.
    pub delta_removed: u64,
    /// Plan-cache executions that reused a cached plan with zero SPARQL
    /// parsing (QUERY frames and continuous-query full evaluations).
    pub plan_hits: u64,
    /// Plan-cache executions that parsed and/or compiled.
    pub plan_misses: u64,
    /// Fresh plan compilations (excludes re-costs).
    pub plan_compiles: u64,
    /// Plan/text entries dropped by the cache's LRU caps.
    pub plan_evictions: u64,
    /// Stale plans re-ordered after the store epoch advanced past the
    /// staleness threshold.
    pub plan_recosts: u64,
    /// 1 if the WAL refused appends after an earlier failure (reads keep
    /// working; writes err until a checkpoint heals the log).
    pub wal_poisoned: u64,
    /// WAL append attempts that failed, refused-while-poisoned included.
    pub wal_appends_failed: u64,
    /// Replication feeds currently attached (leader only).
    pub replicas: u64,
    /// WAL records shipped to replication feeds, catch-up + live.
    pub repl_records_shipped: u64,
    /// Full-snapshot bootstraps served to lagging followers.
    pub repl_snapshots_served: u64,
    /// Feed drops this node recovered from by re-syncing (replica only).
    pub repl_resyncs: u64,
}

/// The client-side materialized view of one subscription: row → count
/// (derivations under bag semantics, 0/1 under DISTINCT).
#[derive(Debug, Default)]
struct View {
    variables: Vec<String>,
    counts: HashMap<Vec<Option<se_rdf::Term>>, i64>,
}

impl View {
    fn materialize(&self) -> ResultSet {
        let mut rows = Vec::new();
        for (row, &c) in &self.counts {
            for _ in 0..c.max(0) {
                rows.push(row.clone());
            }
        }
        ResultSet {
            variables: self.variables.clone(),
            rows,
        }
    }
}

/// A pre-encoded QUERY request payload (text + options), built once by
/// [`Client::prepare`] and reusable across calls — and across clients:
/// it holds no connection state.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    payload: Vec<u8>,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    pending_pushes: VecDeque<Push>,
    views: HashMap<String, View>,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            pending_pushes: VecDeque::new(),
            views: HashMap::new(),
            read_timeout: None,
        })
    }

    /// Bounds how long any read ([`Client::next_push`] and every
    /// request's reply wait) blocks before failing with a retryable
    /// timeout — `None` (the default) blocks forever. On a timeout the
    /// error satisfies [`Client::is_timeout`] and the connection stays
    /// synchronized: the wait only *peeks* at the socket, so no frame is
    /// ever half-read, and the caller can retry the same call.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
    }

    /// Whether `e` is this client's read timeout — i.e. retrying the
    /// call that returned it is safe and meaningful.
    pub fn is_timeout(e: &io::Error) -> bool {
        e.get_ref().is_some_and(|inner| inner.is::<ReadTimedOut>())
    }

    /// Blocks until at least one byte of the next frame is available (or
    /// the configured timeout elapses) without consuming anything, then
    /// clears the socket timeout so the frame itself is read whole.
    fn wait_for_frame(&mut self) -> io::Result<()> {
        let Some(limit) = self.read_timeout else {
            return Ok(());
        };
        self.stream.set_read_timeout(Some(limit))?;
        let mut probe = [0u8; 1];
        let ready = match self.stream.peek(&mut probe) {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Ok(_) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(io::Error::new(io::ErrorKind::TimedOut, ReadTimedOut))
            }
            Err(e) => Err(e),
        };
        self.stream.set_read_timeout(None)?;
        ready
    }

    /// Sends one write batch; blocks until its group-commit tick is
    /// applied and acked.
    pub fn ingest(&mut self, inserts: &Graph, deletes: &Graph) -> io::Result<IngestAck> {
        let mut payload = Vec::new();
        proto::write_graph(&mut payload, inserts)?;
        proto::write_graph(&mut payload, deletes)?;
        let (kind, body) = self.request(proto::req::INGEST, &payload)?;
        expect(kind, proto::resp::INGEST, &body)?;
        let mut r = body.as_slice();
        Ok(IngestAck {
            epoch: r.read_u64()?,
            inserted: r.read_u64()?,
            deleted: r.read_u64()?,
            noops: r.read_u64()?,
            coalesced: r.read_u32()?,
            compacted: r.read_u8()? != 0,
        })
    }

    /// Executes a point query against the server's latest snapshot.
    pub fn query(&mut self, text: &str, options: &QueryOptions) -> io::Result<Rows> {
        let prepared = Self::prepare(text, options)?;
        self.query_prepared(&prepared)
    }

    /// Encodes a query request frame once, for repeated execution via
    /// [`Client::query_prepared`]. Hot callers that re-issue the same
    /// query skip re-encoding the text and options per call — and the
    /// identical bytes keep the server's plan cache on its text-level
    /// (zero-parse) fast path. No protocol change: the wire frame is
    /// byte-identical to [`Client::query`]'s.
    pub fn prepare(text: &str, options: &QueryOptions) -> io::Result<PreparedQuery> {
        let mut payload = Vec::new();
        payload.write_str(text)?;
        proto::write_options(&mut payload, options)?;
        Ok(PreparedQuery { payload })
    }

    /// Executes a query prepared with [`Client::prepare`]: writes the
    /// pre-encoded frame verbatim.
    pub fn query_prepared(&mut self, prepared: &PreparedQuery) -> io::Result<Rows> {
        let (kind, body) = self.request(proto::req::QUERY, &prepared.payload)?;
        expect(kind, proto::resp::ROWS, &body)?;
        let mut r = body.as_slice();
        Ok(Rows {
            epoch: r.read_u64()?,
            results: proto::read_result_set(&mut r)?,
        })
    }

    /// Registers a continuous query under `id`. The server pushes the
    /// full answer set once, then only per-tick changes — and nothing
    /// on ticks that leave the answers untouched (see
    /// [`Client::next_push`]).
    pub fn subscribe(&mut self, id: &str, text: &str, options: &QueryOptions) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.write_str(id)?;
        payload.write_str(text)?;
        proto::write_options(&mut payload, options)?;
        let (kind, body) = self.request(proto::req::SUBSCRIBE, &payload)?;
        expect(kind, proto::resp::OK, &body)
    }

    /// Returns the next continuous-query push, blocking until one
    /// arrives. Pushes queued while waiting for request replies are
    /// drained first, in arrival order.
    pub fn next_push(&mut self) -> io::Result<Push> {
        if let Some(push) = self.pending_pushes.pop_front() {
            return Ok(push);
        }
        self.wait_for_frame()?;
        let (kind, body) = read_frame(&mut self.stream)?;
        if kind == proto::resp::PUSH {
            return self.parse_push(&body);
        }
        // A non-push frame here means the caller interleaved requests
        // and pushes incorrectly; surface it as data.
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a push frame, got kind {kind:#04x}"),
        ))
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        let (kind, body) = self.request(proto::req::STATS, &[])?;
        expect(kind, proto::resp::STATS, &body)?;
        let mut r = body.as_slice();
        Ok(ServerStats {
            epoch: r.read_u64()?,
            triples: r.read_u64()?,
            live_pins: r.read_u64()?,
            snapshots: r.read_u64()?,
            compactions: r.read_u64()?,
            subscriptions: r.read_u64()?,
            incremental_evals: r.read_u64()?,
            full_evals: r.read_u64()?,
            delta_added: r.read_u64()?,
            delta_removed: r.read_u64()?,
            plan_hits: r.read_u64()?,
            plan_misses: r.read_u64()?,
            plan_compiles: r.read_u64()?,
            plan_evictions: r.read_u64()?,
            plan_recosts: r.read_u64()?,
            wal_poisoned: r.read_u64()?,
            wal_appends_failed: r.read_u64()?,
            replicas: r.read_u64()?,
            repl_records_shipped: r.read_u64()?,
            repl_snapshots_served: r.read_u64()?,
            repl_resyncs: r.read_u64()?,
        })
    }

    /// Asks the server to stop; returns once the ack arrives.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let (kind, body) = self.request(proto::req::SHUTDOWN, &[])?;
        expect(kind, proto::resp::OK, &body)
    }

    /// Writes one request frame and reads until its reply, queueing any
    /// pushes that arrive in between.
    fn request(&mut self, kind: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        write_frame(&mut self.stream, kind, payload)?;
        loop {
            self.wait_for_frame()?;
            let (kind, body) = read_frame(&mut self.stream)?;
            if kind == proto::resp::PUSH {
                let push = self.parse_push(&body)?;
                self.pending_pushes.push_back(push);
                continue;
            }
            return Ok((kind, body));
        }
    }

    /// Decodes a push frame and folds it into the subscription's
    /// materialized view.
    fn parse_push(&mut self, body: &[u8]) -> io::Result<Push> {
        let mut r = body;
        let id = r.read_str()?;
        let epoch = r.read_u64()?;
        match r.read_u8()? {
            proto::PUSH_FULL => {
                let results = proto::read_result_set(&mut r)?;
                let mut view = View {
                    variables: results.variables.clone(),
                    counts: HashMap::new(),
                };
                for row in &results.rows {
                    *view.counts.entry(row.clone()).or_insert(0) += 1;
                }
                self.views.insert(id.clone(), view);
                Ok(Push {
                    id,
                    epoch,
                    initial: true,
                    added: results.clone(),
                    removed: ResultSet {
                        variables: results.variables.clone(),
                        rows: Vec::new(),
                    },
                    results,
                })
            }
            proto::PUSH_CHANGES => {
                let added = proto::read_result_set(&mut r)?;
                let removed = proto::read_result_set(&mut r)?;
                let view = self.views.get_mut(&id).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("changes frame for unprimed subscription {id:?}"),
                    )
                })?;
                for row in &added.rows {
                    *view.counts.entry(row.clone()).or_insert(0) += 1;
                }
                for row in &removed.rows {
                    let n = view.counts.entry(row.clone()).or_insert(0);
                    *n -= 1;
                    if *n <= 0 {
                        let neg = *n < 0;
                        view.counts.remove(row);
                        if neg {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("subscription {id:?} removed a row it never held"),
                            ));
                        }
                    }
                }
                let results = self.views[&id].materialize();
                Ok(Push {
                    id,
                    epoch,
                    initial: false,
                    added,
                    removed,
                    results,
                })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown push payload kind {other:#04x}"),
            )),
        }
    }
}

/// Maps an `ERR` frame to `io::Error` and checks the reply kind.
fn expect(kind: u8, want: u8, body: &[u8]) -> io::Result<()> {
    if kind == want {
        return Ok(());
    }
    if kind == proto::resp::ERR {
        let mut r = body;
        let msg = r
            .read_str()
            .unwrap_or_else(|_| "malformed error frame".into());
        return Err(io::Error::other(format!("server: {msg}")));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected reply kind {want:#04x}, got {kind:#04x}"),
    ))
}
