//! A blocking client for the se-server wire protocol, used by tests,
//! examples and benches.
//!
//! Subscription pushes arrive on the same stream as request replies, so
//! a push observed while waiting for a reply is queued and surfaced
//! later through [`Client::next_push`].

use crate::protocol::{self as proto, read_frame, write_frame};
use se_rdf::Graph;
use se_sds::{ReadBin, WriteBin};
use se_sparql::{QueryOptions, ResultSet};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// The ack of one ingest request: aggregate accounting for the whole
/// group-commit tick the request rode in.
#[derive(Debug, Clone, Copy)]
pub struct IngestAck {
    /// Store epoch after the tick.
    pub epoch: u64,
    /// Effective insertions across the tick.
    pub inserted: u64,
    /// Effective deletions across the tick.
    pub deleted: u64,
    /// No-op operations across the tick.
    pub noops: u64,
    /// Ingest requests coalesced into the tick (≥ 1, includes ours).
    pub coalesced: u32,
    /// Whether the tick triggered a compaction.
    pub compacted: bool,
}

/// A point-query answer, stamped with the snapshot epoch it saw.
#[derive(Debug, Clone)]
pub struct Rows {
    /// Epoch of the snapshot the query executed against.
    pub epoch: u64,
    /// The answer set.
    pub results: ResultSet,
}

/// One pushed continuous-query answer.
#[derive(Debug, Clone)]
pub struct Push {
    /// The subscription id the answer belongs to.
    pub id: String,
    /// Store epoch after the batch that produced it.
    pub epoch: u64,
    /// The answer set over the post-batch state.
    pub results: ResultSet,
}

/// Server counters, as answered by a `STATS` request.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Store epoch (group-commit ticks applied).
    pub epoch: u64,
    /// Triples visible in the live store.
    pub triples: u64,
    /// Snapshots currently pinning store resources.
    pub live_pins: u64,
    /// Snapshots taken over the store's lifetime.
    pub snapshots: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Active continuous-query subscriptions.
    pub subscriptions: u64,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    pending_pushes: VecDeque<Push>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            pending_pushes: VecDeque::new(),
        })
    }

    /// Sends one write batch; blocks until its group-commit tick is
    /// applied and acked.
    pub fn ingest(&mut self, inserts: &Graph, deletes: &Graph) -> io::Result<IngestAck> {
        let mut payload = Vec::new();
        proto::write_graph(&mut payload, inserts)?;
        proto::write_graph(&mut payload, deletes)?;
        let (kind, body) = self.request(proto::req::INGEST, &payload)?;
        expect(kind, proto::resp::INGEST, &body)?;
        let mut r = body.as_slice();
        Ok(IngestAck {
            epoch: r.read_u64()?,
            inserted: r.read_u64()?,
            deleted: r.read_u64()?,
            noops: r.read_u64()?,
            coalesced: r.read_u32()?,
            compacted: r.read_u8()? != 0,
        })
    }

    /// Executes a point query against the server's latest snapshot.
    pub fn query(&mut self, text: &str, options: &QueryOptions) -> io::Result<Rows> {
        let mut payload = Vec::new();
        payload.write_str(text)?;
        proto::write_options(&mut payload, options)?;
        let (kind, body) = self.request(proto::req::QUERY, &payload)?;
        expect(kind, proto::resp::ROWS, &body)?;
        let mut r = body.as_slice();
        Ok(Rows {
            epoch: r.read_u64()?,
            results: proto::read_result_set(&mut r)?,
        })
    }

    /// Registers a continuous query under `id`; after every subsequent
    /// batch the server pushes its answer set (see [`Client::next_push`]).
    pub fn subscribe(&mut self, id: &str, text: &str, options: &QueryOptions) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.write_str(id)?;
        payload.write_str(text)?;
        proto::write_options(&mut payload, options)?;
        let (kind, body) = self.request(proto::req::SUBSCRIBE, &payload)?;
        expect(kind, proto::resp::OK, &body)
    }

    /// Returns the next continuous-query push, blocking until one
    /// arrives. Pushes queued while waiting for request replies are
    /// drained first, in arrival order.
    pub fn next_push(&mut self) -> io::Result<Push> {
        if let Some(push) = self.pending_pushes.pop_front() {
            return Ok(push);
        }
        let (kind, body) = read_frame(&mut self.stream)?;
        if kind == proto::resp::PUSH {
            return parse_push(&body);
        }
        // A non-push frame here means the caller interleaved requests
        // and pushes incorrectly; surface it as data.
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a push frame, got kind {kind:#04x}"),
        ))
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        let (kind, body) = self.request(proto::req::STATS, &[])?;
        expect(kind, proto::resp::STATS, &body)?;
        let mut r = body.as_slice();
        Ok(ServerStats {
            epoch: r.read_u64()?,
            triples: r.read_u64()?,
            live_pins: r.read_u64()?,
            snapshots: r.read_u64()?,
            compactions: r.read_u64()?,
            subscriptions: r.read_u64()?,
        })
    }

    /// Asks the server to stop; returns once the ack arrives.
    pub fn shutdown(&mut self) -> io::Result<()> {
        let (kind, body) = self.request(proto::req::SHUTDOWN, &[])?;
        expect(kind, proto::resp::OK, &body)
    }

    /// Writes one request frame and reads until its reply, queueing any
    /// pushes that arrive in between.
    fn request(&mut self, kind: u8, payload: &[u8]) -> io::Result<(u8, Vec<u8>)> {
        write_frame(&mut self.stream, kind, payload)?;
        loop {
            let (kind, body) = read_frame(&mut self.stream)?;
            if kind == proto::resp::PUSH {
                self.pending_pushes.push_back(parse_push(&body)?);
                continue;
            }
            return Ok((kind, body));
        }
    }
}

fn parse_push(body: &[u8]) -> io::Result<Push> {
    let mut r = body;
    Ok(Push {
        id: r.read_str()?,
        epoch: r.read_u64()?,
        results: proto::read_result_set(&mut r)?,
    })
}

/// Maps an `ERR` frame to `io::Error` and checks the reply kind.
fn expect(kind: u8, want: u8, body: &[u8]) -> io::Result<()> {
    if kind == want {
        return Ok(());
    }
    if kind == proto::resp::ERR {
        let mut r = body;
        let msg = r
            .read_str()
            .unwrap_or_else(|_| "malformed error frame".into());
        return Err(io::Error::other(format!("server: {msg}")));
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected reply kind {want:#04x}, got {kind:#04x}"),
    ))
}
