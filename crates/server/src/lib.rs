//! # se-server — a multi-client stream server over SuccinctEdge
//!
//! A thin session-multiplexing front end over the sharded streaming
//! engine, in the spirit of declarative-dataflow's `src/server` split:
//! one writer thread owns a [`ShardedHybridStore`](se_stream) and any
//! number of TCP clients ingest, query and subscribe concurrently.
//!
//! Three design points carry the whole crate:
//!
//! * **Epoch-pinned snapshot reads.** Point queries never queue behind
//!   the writer: each connection clones the latest published
//!   [`StoreSnapshot`](se_stream::StoreSnapshot) (an `Arc` bump) and
//!   executes SPARQL on its own thread at a consistent epoch, while
//!   `apply` and compaction proceed on the live store.
//! * **Group-commit ingest.** Concurrent small writes are coalesced into
//!   one pipelined `apply` per tick, amortizing encode/route/query
//!   re-evaluation across clients; every rider is acked with the tick's
//!   aggregate report.
//! * **Continuous-query subscriptions.** Registered queries re-evaluate
//!   once per tick (not per client) and their answers are pushed to the
//!   subscribing connections.
//!
//! The binary lives in `src/bin/se-server.rs`; the wire protocol is
//! specified in `docs/server.md` and implemented in [`protocol`]. The
//! whole crate is `std`-only — no new dependencies.

pub mod client;
pub mod ontology_text;
pub mod protocol;
pub mod replica;
pub mod server;

pub use client::{Client, IngestAck, PreparedQuery, Push, ReadTimedOut, Rows, ServerStats};
pub use replica::{Replica, ReplicaConfig};
pub use server::{Server, ServerConfig, StatsReport, TickReport};
