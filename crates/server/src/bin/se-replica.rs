//! The se-replica binary: follows a leader se-server over its
//! replication feed and serves read traffic (QUERY / SUBSCRIBE / STATS)
//! from its own store.
//!
//! ```text
//! se-replica --leader HOST:PORT [--addr HOST:PORT] [--shards N]
//!            [--reconnect-ms MS] [--ontology FILE]
//! ```
//!
//! The ontology file uses the same line format as se-server (see
//! `--help` there); leader and replica must be started with the same
//! ontology, since replication ships asserted triples and each side
//! derives its own inferences. Ingest requests are refused — writes
//! belong on the leader.

use se_server::ontology_text::load_ontology;
use se_server::{Replica, ReplicaConfig};
use std::time::Duration;

fn main() {
    let mut leader: Option<String> = None;
    let mut addr = "127.0.0.1:7879".to_string();
    let mut shards = 4usize;
    let mut reconnect_ms = 200u64;
    let mut ontology_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--leader" => leader = Some(value("--leader")),
            "--addr" => addr = value("--addr"),
            "--shards" => shards = parse(&value("--shards"), "--shards"),
            "--reconnect-ms" => reconnect_ms = parse(&value("--reconnect-ms"), "--reconnect-ms"),
            "--ontology" => ontology_file = Some(value("--ontology")),
            "--help" | "-h" => {
                println!(
                    "usage: se-replica --leader HOST:PORT [--addr HOST:PORT] [--shards N] \
                     [--reconnect-ms MS] [--ontology FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let Some(leader) = leader else {
        eprintln!("--leader is required (try --help)");
        std::process::exit(2);
    };
    let ontology = match load_ontology(ontology_file.as_deref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let config = ReplicaConfig {
        shards,
        reconnect: Duration::from_millis(reconnect_ms),
    };
    let replica = match Replica::start(ontology, leader.as_str(), addr.as_str(), config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to start the replica on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "se-replica listening on {} (following {}, {} shards)",
        replica.addr(),
        leader,
        shards
    );
    replica.join();
    println!("se-replica stopped");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{s}' for {flag}");
        std::process::exit(2);
    })
}
