//! The se-server binary: binds a TCP address and serves a sharded
//! streaming store to any number of clients.
//!
//! ```text
//! se-server [--addr HOST:PORT] [--shards N] [--tick-ms MS] [--ontology FILE]
//! ```
//!
//! The ontology file is a plain line format (offline — no RDF parser
//! dependency): one declaration per line, `#` comments allowed.
//!
//! ```text
//! class    <iri> [<super-iri>]
//! property <iri> [<super-iri>]
//! oprop    <iri>        # object property
//! dprop    <iri>        # datatype property
//! domain   <prop> <class>
//! range    <prop> <class>
//! ```
//!
//! Without `--ontology` the server starts on the built-in water-network
//! demo ontology, matching `examples/stream_server.rs`.

use se_rdf::Graph;
use se_server::ontology_text::load_ontology;
use se_server::{Server, ServerConfig};
use se_stream::ShardedHybridStore;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut shards = 4usize;
    let mut tick_ms = 2u64;
    let mut ontology_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => shards = parse(&value("--shards"), "--shards"),
            "--tick-ms" => tick_ms = parse(&value("--tick-ms"), "--tick-ms"),
            "--ontology" => ontology_file = Some(value("--ontology")),
            "--help" | "-h" => {
                println!(
                    "usage: se-server [--addr HOST:PORT] [--shards N] [--tick-ms MS] \
                     [--ontology FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let ontology = match load_ontology(ontology_file.as_deref()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    let store = match ShardedHybridStore::build(&ontology, &Graph::new(), shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build the store: {e}");
            std::process::exit(1);
        }
    };

    let config = ServerConfig {
        tick: Duration::from_millis(tick_ms),
    };
    let server = match Server::start(store, addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "se-server listening on {} ({} shards, {}ms group-commit tick)",
        server.addr(),
        shards,
        tick_ms
    );
    server.join();
    println!("se-server stopped");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{s}' for {flag}");
        std::process::exit(2);
    })
}
