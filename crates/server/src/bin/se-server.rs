//! The se-server binary: binds a TCP address and serves a sharded
//! streaming store to any number of clients.
//!
//! ```text
//! se-server [--addr HOST:PORT] [--shards N] [--tick-ms MS] [--ontology FILE]
//! ```
//!
//! The ontology file is a plain line format (offline — no RDF parser
//! dependency): one declaration per line, `#` comments allowed.
//!
//! ```text
//! class    <iri> [<super-iri>]
//! property <iri> [<super-iri>]
//! oprop    <iri>        # object property
//! dprop    <iri>        # datatype property
//! domain   <prop> <class>
//! range    <prop> <class>
//! ```
//!
//! Without `--ontology` the server starts on the built-in water-network
//! demo ontology, matching `examples/stream_server.rs`.

use se_ontology::Ontology;
use se_rdf::Graph;
use se_server::{Server, ServerConfig};
use se_stream::ShardedHybridStore;
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut shards = 4usize;
    let mut tick_ms = 2u64;
    let mut ontology_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => shards = parse(&value("--shards"), "--shards"),
            "--tick-ms" => tick_ms = parse(&value("--tick-ms"), "--tick-ms"),
            "--ontology" => ontology_file = Some(value("--ontology")),
            "--help" | "-h" => {
                println!(
                    "usage: se-server [--addr HOST:PORT] [--shards N] [--tick-ms MS] \
                     [--ontology FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let ontology = match &ontology_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match parse_ontology(&text) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        },
        None => se_ontology::water_ontology(),
    };

    let store = match ShardedHybridStore::build(&ontology, &Graph::new(), shards) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to build the store: {e}");
            std::process::exit(1);
        }
    };

    let config = ServerConfig {
        tick: Duration::from_millis(tick_ms),
    };
    let server = match Server::start(store, addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "se-server listening on {} ({} shards, {}ms group-commit tick)",
        server.addr(),
        shards,
        tick_ms
    );
    server.join();
    println!("se-server stopped");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value '{s}' for {flag}");
        std::process::exit(2);
    })
}

fn parse_ontology(text: &str) -> Result<Ontology, String> {
    let mut o = Ontology::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        let a = parts.next();
        let b = parts.next();
        match kind {
            "class" => {
                o.add_class(need(a, kind, lineno)?, b.unwrap_or(""));
            }
            "property" => {
                o.add_property(need(a, kind, lineno)?, b.unwrap_or(""));
            }
            "oprop" => {
                o.add_object_property(need(a, kind, lineno)?);
            }
            "dprop" => {
                o.add_datatype_property(need(a, kind, lineno)?);
            }
            "domain" => {
                o.add_domain(need(a, kind, lineno)?, need(b, kind, lineno)?);
            }
            "range" => {
                o.add_range(need(a, kind, lineno)?, need(b, kind, lineno)?);
            }
            other => {
                return Err(format!(
                    "line {}: unknown declaration '{other}'",
                    lineno + 1
                ))
            }
        }
    }
    Ok(o)
}

fn need<'a>(field: Option<&'a str>, kind: &str, lineno: usize) -> Result<&'a str, String> {
    field.ok_or_else(|| format!("line {}: '{kind}' needs an IRI", lineno + 1))
}
