//! The stream server: one writer thread owning the store, any number of
//! connection threads serving clients over the snapshot slot.
//!
//! # Architecture
//!
//! ```text
//!  client conns ──frames──▶ connection threads
//!       │                        │        ╲
//!       │   INGEST/SUBSCRIBE     │ QUERY   ╲ (clone)
//!       ▼                        ▼          ▼
//!   mpsc::Sender<Cmd> ───▶ writer thread   snapshot slot
//!                          (group commit)  Arc<Mutex<StoreSnapshot>>
//!                          owns the store ──publishes──▲
//! ```
//!
//! * **Writer thread** — sole owner of the
//!   [`StreamSession<ShardedHybridStore>`]. It drains the command channel
//!   with a group-commit tick: the first `INGEST` opens a window of
//!   [`ServerConfig::tick`]; every write arriving inside the window is
//!   coalesced (all deletes, then all inserts) into **one** pipelined
//!   [`apply`](se_stream::ShardedHybridStore::apply). After the apply it
//!   publishes a fresh [`StoreSnapshot`], acks every coalesced request
//!   with the tick's aggregate report, and pushes each continuous-query
//!   answer to its subscriber.
//! * **Connection threads** — one per client. Point queries clone the
//!   published snapshot (an `Arc` bump) and execute on the connection
//!   thread: readers never enter the writer's queue and are never blocked
//!   by ingest or compaction. Responses and pushes to one client are
//!   serialized through a shared sink lock.

use crate::protocol::{self as proto, read_frame, write_frame};
use se_sparql::{PlanCache, QueryOptions};
use se_stream::{ShardedHybridStore, StoreSnapshot, StreamError, StreamSession};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A client's write half, shared between its connection thread
/// (request replies) and the writer thread (subscription pushes).
pub(crate) type ClientSink = Arc<Mutex<TcpStream>>;

/// How often an idle connection thread wakes to check the stop flag.
/// Bounded so `SHUTDOWN` never hangs on a quiet subscriber whose
/// connection thread would otherwise block in a read forever.
pub(crate) const CONN_POLL: Duration = Duration::from_millis(50);

/// One active subscription as the writer sees it.
pub(crate) struct Sub {
    pub(crate) sink: ClientSink,
    /// Whether the subscriber has received its initial full frame.
    /// Until then every tick pushes the whole answer set; afterwards
    /// only changed ticks push, and they push just the changes.
    pub(crate) primed: bool,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Group-commit window: how long the writer keeps coalescing after
    /// the first write of a tick before applying. Zero degenerates to
    /// one apply per request.
    pub tick: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(2),
        }
    }
}

/// Aggregate ack for one group-commit tick (every coalesced request
/// receives the same numbers).
#[derive(Debug, Clone, Copy)]
pub struct TickReport {
    /// Store epoch after the tick's apply.
    pub epoch: u64,
    /// Effective insertions across the whole tick.
    pub inserted: u64,
    /// Effective deletions across the whole tick.
    pub deleted: u64,
    /// No-op operations across the whole tick.
    pub noops: u64,
    /// Ingest requests coalesced into this tick.
    pub coalesced: u32,
    /// Whether the apply triggered a compaction.
    pub compacted: bool,
}

/// Commands the connection threads hand to the writer (and, on a
/// [`Replica`](crate::replica::Replica), to the feed thread).
pub(crate) enum Cmd {
    Ingest {
        inserts: se_rdf::Graph,
        deletes: se_rdf::Graph,
        done: mpsc::Sender<Result<TickReport, String>>,
    },
    Subscribe {
        id: String,
        text: String,
        options: QueryOptions,
        sink: ClientSink,
        done: mpsc::Sender<Result<(), String>>,
    },
    Stats {
        done: mpsc::Sender<StatsReport>,
    },
    Replicate {
        from_epoch: u64,
        sink: ClientSink,
        done: mpsc::Sender<Result<(), String>>,
    },
    Shutdown,
}

/// Replication-side counters, kept by whichever thread owns the store
/// (the leader's writer, or a replica's feed thread).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReplCounters {
    /// Attached replication feeds (always 0 on a replica).
    pub(crate) replicas: u64,
    /// WAL records shipped to feeds, catch-up and live combined.
    pub(crate) records_shipped: u64,
    /// Full-snapshot bootstraps served because the WAL tail no longer
    /// covered a follower's epoch.
    pub(crate) snapshots_served: u64,
    /// Times this node, as a follower, dropped its feed and re-synced
    /// (always 0 on a leader).
    pub(crate) resyncs: u64,
}

/// Snapshot of the server's counters, answered by the writer thread.
#[derive(Debug, Clone, Copy)]
pub struct StatsReport {
    /// Store epoch (group-commit ticks applied).
    pub epoch: u64,
    /// Triples visible in the live store.
    pub triples: u64,
    /// Snapshots currently pinning store resources.
    pub live_pins: u64,
    /// Snapshots taken over the store's lifetime.
    pub snapshots: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Active continuous-query subscriptions.
    pub subscriptions: u64,
    /// Continuous-query evaluations served by the delta path.
    pub incremental_evals: u64,
    /// Continuous-query full (re-)evaluations: seeding, fallback
    /// queries, and batches without a captured delta.
    pub full_evals: u64,
    /// Net triples added across all captured batch deltas.
    pub delta_added: u64,
    /// Net triples removed across all captured batch deltas.
    pub delta_removed: u64,
    /// Plan-cache executions (QUERY frames and continuous-query full
    /// evaluations) that reused a cached plan with zero SPARQL parsing.
    pub plan_hits: u64,
    /// Plan-cache executions that parsed and/or compiled.
    pub plan_misses: u64,
    /// Fresh plan compilations (excludes re-costs).
    pub plan_compiles: u64,
    /// Plan/text entries dropped by the cache's LRU caps.
    pub plan_evictions: u64,
    /// Stale plans re-ordered after the store epoch advanced past the
    /// staleness threshold.
    pub plan_recosts: u64,
    /// 1 if the WAL refused appends after an earlier failure (the store
    /// serves reads but acks no writes until a checkpoint heals it).
    pub wal_poisoned: u64,
    /// WAL append attempts that failed (including those refused while
    /// poisoned).
    pub wal_appends_failed: u64,
    /// Replication feeds currently attached (leader only).
    pub replicas: u64,
    /// WAL records shipped to replication feeds, catch-up + live.
    pub repl_records_shipped: u64,
    /// Full-snapshot bootstraps served to lagging followers.
    pub repl_snapshots_served: u64,
    /// Feed drops this node recovered from by re-syncing (replica only).
    pub repl_resyncs: u64,
}

/// A running server: its bound address plus the threads to join.
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `store`. The store moves into the writer thread; all
    /// further access goes through client connections.
    pub fn start(
        store: ShardedHybridStore,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let slot = Arc::new(Mutex::new(store.snapshot()));
        let (tx, rx) = mpsc::channel::<Cmd>();
        let stop = Arc::new(AtomicBool::new(false));
        // One compiled-plan cache for the whole server: QUERY frames on
        // every connection thread and continuous-query (re)seeding on
        // the writer share its shape-level plans, so a repeated query
        // text executes with zero parsing wherever it arrives.
        let plan_cache = Arc::new(PlanCache::new());

        let writer = {
            let slot = Arc::clone(&slot);
            let cache = Arc::clone(&plan_cache);
            thread::Builder::new()
                .name("se-server-writer".into())
                .spawn(move || {
                    let mut session = StreamSession::new(store);
                    session.registry_mut().set_plan_cache(cache);
                    writer_loop(session, rx, slot, config.tick)
                })?
        };

        let accept = {
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            let slot = Arc::clone(&slot);
            thread::Builder::new()
                .name("se-server-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let tx = tx.clone();
                        let slot = Arc::clone(&slot);
                        let stop = Arc::clone(&stop);
                        let cache = Arc::clone(&plan_cache);
                        let addr = local;
                        // Connection threads are detached: they exit when
                        // their client hangs up or the writer goes away.
                        let _ =
                            thread::Builder::new()
                                .name("se-server-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(stream, tx, slot, stop, cache, addr);
                                });
                    }
                })?
        };

        Ok(Server {
            addr: local,
            accept: Some(accept),
            writer: Some(writer),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to stop (a client sent `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}

// --------------------------------------------------------------- writer

/// An ingest rider waiting in the tick window: inserts, deletes, ack.
type PendingIngest = (
    se_rdf::Graph,
    se_rdf::Graph,
    mpsc::Sender<Result<TickReport, String>>,
);

fn writer_loop(
    mut session: StreamSession<ShardedHybridStore>,
    rx: mpsc::Receiver<Cmd>,
    slot: Arc<Mutex<StoreSnapshot>>,
    tick: Duration,
) {
    // Active subscriptions: registry id → sink + primed flag.
    let mut subs: HashMap<String, Sub> = HashMap::new();
    // Attached replication feeds: every tick's WAL record goes to each.
    let mut replicas: Vec<ClientSink> = Vec::new();
    let mut repl = ReplCounters::default();
    // Initial frames always come from a seeding (or fallback) evaluation,
    // which carries the full answer set regardless of this flag — so the
    // steady-state delta path never has to materialize full sets.
    session.registry_mut().set_emit_full(false);
    'outer: loop {
        let Ok(first) = rx.recv() else { break };
        let mut pending: Vec<PendingIngest> = Vec::new();
        match first {
            Cmd::Shutdown => break,
            Cmd::Subscribe {
                id,
                text,
                options,
                sink,
                done,
            } => {
                subscribe(&mut session, &mut subs, id, text, options, sink, done);
                continue;
            }
            Cmd::Stats { done } => {
                repl.replicas = replicas.len() as u64;
                let _ = done.send(stats(&session, subs.len(), repl));
                continue;
            }
            Cmd::Replicate {
                from_epoch,
                sink,
                done,
            } => {
                attach_replica(
                    &mut session,
                    &mut replicas,
                    &mut repl,
                    from_epoch,
                    sink,
                    done,
                );
                continue;
            }
            Cmd::Ingest {
                inserts,
                deletes,
                done,
            } => pending.push((inserts, deletes, done)),
        }

        // Group-commit window: coalesce every write that arrives within
        // `tick` of the first one. Non-write commands are handled inline
        // so a stats probe can't extend the window.
        let mut shutdown = false;
        let deadline = Instant::now() + tick;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(Cmd::Ingest {
                    inserts,
                    deletes,
                    done,
                }) => pending.push((inserts, deletes, done)),
                Ok(Cmd::Subscribe {
                    id,
                    text,
                    options,
                    sink,
                    done,
                }) => subscribe(&mut session, &mut subs, id, text, options, sink, done),
                Ok(Cmd::Stats { done }) => {
                    repl.replicas = replicas.len() as u64;
                    let _ = done.send(stats(&session, subs.len(), repl));
                }
                Ok(Cmd::Replicate {
                    from_epoch,
                    sink,
                    done,
                }) => attach_replica(
                    &mut session,
                    &mut replicas,
                    &mut repl,
                    from_epoch,
                    sink,
                    done,
                ),
                Ok(Cmd::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    shutdown = true;
                    break;
                }
            }
        }

        // One apply for the whole tick: all deletes, then all inserts.
        let coalesced = pending.len() as u32;
        let mut inserts = se_rdf::Graph::new();
        let mut deletes = se_rdf::Graph::new();
        for (ins, del, _) in &pending {
            for t in del.iter() {
                deletes.insert(t.clone());
            }
            for t in ins.iter() {
                inserts.insert(t.clone());
            }
        }
        match session.apply_batch(&inserts, &deletes) {
            Ok(outcome) => {
                let snap = session.store().snapshot();
                let report = TickReport {
                    epoch: snap.epoch(),
                    inserted: outcome.report.inserted as u64,
                    deleted: outcome.report.deleted as u64,
                    noops: outcome.report.noops as u64,
                    coalesced,
                    compacted: outcome.report.compacted,
                };
                *slot.lock().expect("snapshot slot poisoned") = snap;
                for (_, _, done) in &pending {
                    let _ = done.send(Ok(report));
                }
                push_results(&mut session, &mut subs, outcome.results, report.epoch);
                // Ship this tick's WAL record to every attached feed.
                // Even an all-noop tick ships: the epoch advanced, and a
                // follower's consecutive-epoch invariant needs the gap
                // filled. A dead feed is dropped; when the last one goes
                // the forced delta capture is released.
                if !replicas.is_empty() {
                    let delta = outcome.report.delta.unwrap_or_default();
                    let payload = se_stream::encode_record_payload(report.epoch, &delta);
                    replicas.retain(|sink| {
                        let mut sink = sink.lock().expect("replica sink poisoned");
                        write_frame(&mut *sink, proto::resp::REPL_RECORD, &payload).is_ok()
                    });
                    repl.records_shipped += replicas.len() as u64;
                    if replicas.is_empty() {
                        session.set_force_delta_capture(false);
                    }
                }
            }
            Err(e) => {
                // A poisoned store stays poisoned; a validation error is
                // per-tick. Either way every rider learns what happened.
                let msg = e.to_string();
                for (_, _, done) in &pending {
                    let _ = done.send(Err(msg.clone()));
                }
                if matches!(e, StreamError::Worker(_)) {
                    break 'outer;
                }
            }
        }
        if shutdown {
            break;
        }
    }
    // Graceful exit: drain any WAL appends still buffered under a
    // relaxed sync policy, so every acked batch is durable before the
    // server reports itself stopped. With `SyncPolicy::EveryBatch` this
    // is a no-op — acks are already durable when they are sent.
    let _ = session.store().wal_flush();
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn subscribe(
    session: &mut StreamSession<ShardedHybridStore>,
    subs: &mut HashMap<String, Sub>,
    id: String,
    text: String,
    options: QueryOptions,
    sink: ClientSink,
    done: mpsc::Sender<Result<(), String>>,
) {
    match session.register_query(id.clone(), &text, options) {
        Ok(()) => {
            // Re-subscribing an id replaces the query, so the sink must
            // be re-primed with a fresh full frame.
            subs.insert(
                id,
                Sub {
                    sink,
                    primed: false,
                },
            );
            let _ = done.send(Ok(()));
        }
        Err(e) => {
            let _ = done.send(Err(e.to_string()));
        }
    }
}

/// Catches a follower up to the current epoch — WAL-tail records when
/// the log still covers `(from_epoch, current]`, a full snapshot
/// otherwise — then registers its sink for live per-tick records.
fn attach_replica(
    session: &mut StreamSession<ShardedHybridStore>,
    replicas: &mut Vec<ClientSink>,
    repl: &mut ReplCounters,
    from_epoch: u64,
    sink: ClientSink,
    done: mpsc::Sender<Result<(), String>>,
) {
    let current = session.store().epoch();
    if from_epoch > current {
        let _ = done.send(Err(format!(
            "follower epoch {from_epoch} is ahead of leader epoch {current}"
        )));
        return;
    }
    if from_epoch < current {
        // Drain buffered appends first so the tail scan sees everything
        // this store has acked, then prefer shipping records: a follower
        // replays them in O(delta) instead of rebuilding from scratch.
        // The writer thread is the sole appender and it is parked here,
        // so the read-only scan cannot race an in-flight append.
        let tail = session
            .store()
            .wal_flush()
            .ok()
            .and_then(|()| session.store().wal_dir())
            .and_then(|dir| se_stream::read_tail(&dir, from_epoch).ok().flatten())
            .filter(|recs| recs.last().map(|r| r.epoch) == Some(current));
        let sent = match tail {
            Some(records) => {
                repl.records_shipped += records.len() as u64;
                records.iter().try_for_each(|rec| {
                    let payload = se_stream::encode_record_payload(rec.epoch, &rec.delta);
                    reply(&sink, proto::resp::REPL_RECORD, &payload)
                })
            }
            None => {
                repl.snapshots_served += 1;
                let graph = session.store().materialize();
                let mut payload = Vec::new();
                se_sds::WriteBin::write_u64(&mut payload, current)
                    .and_then(|()| proto::write_graph(&mut payload, &graph))
                    .and_then(|()| reply(&sink, proto::resp::REPL_SNAPSHOT, &payload))
            }
        };
        if sent.is_err() {
            let _ = done.send(Err("replication feed write failed during catch-up".into()));
            return;
        }
    }
    replicas.push(sink);
    session.set_force_delta_capture(true);
    let _ = done.send(Ok(()));
}

/// Pushes each continuous answer to its subscriber: the whole set once
/// (the initial frame), then only the per-tick changes — and nothing at
/// all on ticks that left the answer set untouched. A dead sink retires
/// the subscription. Shared by the leader's writer and a replica's feed
/// thread.
pub(crate) fn push_results(
    session: &mut StreamSession<ShardedHybridStore>,
    subs: &mut HashMap<String, Sub>,
    results: Vec<se_stream::ContinuousResult>,
    epoch: u64,
) {
    for result in results {
        let Some(sub) = subs.get_mut(&result.id) else {
            continue;
        };
        if sub.primed && result.unchanged() {
            continue;
        }
        let mut payload = Vec::new();
        let encoded = se_sds::WriteBin::write_str(&mut payload, &result.id)
            .and_then(|()| se_sds::WriteBin::write_u64(&mut payload, epoch))
            .and_then(|()| {
                if sub.primed {
                    se_sds::WriteBin::write_u8(&mut payload, proto::PUSH_CHANGES)?;
                    proto::write_result_set(&mut payload, &result.added)?;
                    proto::write_result_set(&mut payload, &result.removed)
                } else {
                    se_sds::WriteBin::write_u8(&mut payload, proto::PUSH_FULL)?;
                    proto::write_result_set(&mut payload, &result.results)
                }
            })
            .is_ok();
        let ok = encoded && {
            let mut sink = sub.sink.lock().expect("client sink poisoned");
            write_frame(&mut *sink, proto::resp::PUSH, &payload).is_ok()
        };
        if ok {
            sub.primed = true;
        } else {
            subs.remove(&result.id);
            session.registry_mut().deregister(&result.id);
        }
    }
}

pub(crate) fn stats(
    session: &StreamSession<ShardedHybridStore>,
    subscriptions: usize,
    repl: ReplCounters,
) -> StatsReport {
    let s = session.store().stats();
    let cq = session.stream_stats();
    StatsReport {
        epoch: s.epoch,
        triples: se_core::TripleSource::len(session.store()) as u64,
        live_pins: s.live_pins as u64,
        snapshots: s.snapshots as u64,
        compactions: s.compactions as u64,
        subscriptions: subscriptions as u64,
        incremental_evals: cq.incremental_evals,
        full_evals: cq.full_evals,
        delta_added: cq.delta_added,
        delta_removed: cq.delta_removed,
        plan_hits: cq.plan_hits,
        plan_misses: cq.plan_misses,
        plan_compiles: cq.plan_compiles,
        plan_evictions: cq.plan_evictions,
        plan_recosts: cq.plan_recosts,
        wal_poisoned: cq.wal_poisoned,
        wal_appends_failed: cq.wal_appends_failed,
        replicas: repl.replicas,
        repl_records_shipped: repl.records_shipped,
        repl_snapshots_served: repl.snapshots_served,
        repl_resyncs: repl.resyncs,
    }
}

// ---------------------------------------------------------- connections

pub(crate) fn serve_connection(
    stream: TcpStream,
    tx: mpsc::Sender<Cmd>,
    slot: Arc<Mutex<StoreSnapshot>>,
    stop: Arc<AtomicBool>,
    plan_cache: Arc<PlanCache>,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let sink: ClientSink = Arc::new(Mutex::new(stream));
    loop {
        // Wait for the next frame with a bounded peek so the thread can
        // observe the stop flag between frames. The peek consumes
        // nothing; once a byte is visible the timeout is cleared and the
        // frame is read blocking, so a frame can never be torn in half
        // by the poll interval.
        reader.set_read_timeout(Some(CONN_POLL))?;
        let mut probe = [0u8; 1];
        match reader.peek(&mut probe) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(_) => return Ok(()),
        }
        reader.set_read_timeout(None)?;
        let (kind, payload) = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return Ok(()), // client hung up
        };
        let mut p = payload.as_slice();
        match kind {
            proto::req::INGEST => {
                let parsed = (|| -> io::Result<_> {
                    let inserts = proto::read_graph(&mut p)?;
                    let deletes = proto::read_graph(&mut p)?;
                    Ok((inserts, deletes))
                })();
                match parsed {
                    Ok((inserts, deletes)) => {
                        let (done, ack) = mpsc::channel();
                        let sent = tx
                            .send(Cmd::Ingest {
                                inserts,
                                deletes,
                                done,
                            })
                            .is_ok();
                        match (sent, sent.then(|| ack.recv()).and_then(Result::ok)) {
                            (true, Some(Ok(r))) => {
                                let mut out = Vec::new();
                                se_sds::WriteBin::write_u64(&mut out, r.epoch)?;
                                se_sds::WriteBin::write_u64(&mut out, r.inserted)?;
                                se_sds::WriteBin::write_u64(&mut out, r.deleted)?;
                                se_sds::WriteBin::write_u64(&mut out, r.noops)?;
                                se_sds::WriteBin::write_u32(&mut out, r.coalesced)?;
                                se_sds::WriteBin::write_u8(&mut out, r.compacted as u8)?;
                                reply(&sink, proto::resp::INGEST, &out)?;
                            }
                            (true, Some(Err(msg))) => reply_err(&sink, &msg)?,
                            _ => reply_err(&sink, "server is shutting down")?,
                        }
                    }
                    Err(e) => reply_err(&sink, &e.to_string())?,
                }
            }
            proto::req::QUERY => {
                let parsed = (|| -> io::Result<_> {
                    let text = se_sds::ReadBin::read_str(&mut p)?;
                    let options = proto::read_options(&mut p)?;
                    Ok((text, options))
                })();
                match parsed {
                    Ok((text, options)) => {
                        // Clone the latest snapshot (an Arc bump) and
                        // evaluate here — the writer is never involved.
                        // The shared plan cache makes a repeated query
                        // text a pure bind-and-execute: no parsing, no
                        // optimizing on the hot path.
                        let snap = slot.lock().expect("snapshot slot poisoned").clone();
                        match plan_cache.execute_text(&snap, &text, &options) {
                            Ok(rows) => {
                                let mut out = Vec::new();
                                se_sds::WriteBin::write_u64(&mut out, snap.epoch())?;
                                proto::write_result_set(&mut out, &rows)?;
                                reply(&sink, proto::resp::ROWS, &out)?;
                            }
                            Err(e) => reply_err(&sink, &e.to_string())?,
                        }
                    }
                    Err(e) => reply_err(&sink, &e.to_string())?,
                }
            }
            proto::req::SUBSCRIBE => {
                let parsed = (|| -> io::Result<_> {
                    let id = se_sds::ReadBin::read_str(&mut p)?;
                    let text = se_sds::ReadBin::read_str(&mut p)?;
                    let options = proto::read_options(&mut p)?;
                    Ok((id, text, options))
                })();
                match parsed {
                    Ok((id, text, options)) => {
                        let (done, ack) = mpsc::channel();
                        let sent = tx
                            .send(Cmd::Subscribe {
                                id,
                                text,
                                options,
                                sink: Arc::clone(&sink),
                                done,
                            })
                            .is_ok();
                        match (sent, sent.then(|| ack.recv()).and_then(Result::ok)) {
                            (true, Some(Ok(()))) => reply(&sink, proto::resp::OK, &[])?,
                            (true, Some(Err(msg))) => reply_err(&sink, &msg)?,
                            _ => reply_err(&sink, "server is shutting down")?,
                        }
                    }
                    Err(e) => reply_err(&sink, &e.to_string())?,
                }
            }
            proto::req::STATS => {
                let (done, ack) = mpsc::channel();
                let sent = tx.send(Cmd::Stats { done }).is_ok();
                match (sent, sent.then(|| ack.recv()).and_then(Result::ok)) {
                    (true, Some(s)) => {
                        let mut out = Vec::new();
                        se_sds::WriteBin::write_u64(&mut out, s.epoch)?;
                        se_sds::WriteBin::write_u64(&mut out, s.triples)?;
                        se_sds::WriteBin::write_u64(&mut out, s.live_pins)?;
                        se_sds::WriteBin::write_u64(&mut out, s.snapshots)?;
                        se_sds::WriteBin::write_u64(&mut out, s.compactions)?;
                        se_sds::WriteBin::write_u64(&mut out, s.subscriptions)?;
                        se_sds::WriteBin::write_u64(&mut out, s.incremental_evals)?;
                        se_sds::WriteBin::write_u64(&mut out, s.full_evals)?;
                        se_sds::WriteBin::write_u64(&mut out, s.delta_added)?;
                        se_sds::WriteBin::write_u64(&mut out, s.delta_removed)?;
                        se_sds::WriteBin::write_u64(&mut out, s.plan_hits)?;
                        se_sds::WriteBin::write_u64(&mut out, s.plan_misses)?;
                        se_sds::WriteBin::write_u64(&mut out, s.plan_compiles)?;
                        se_sds::WriteBin::write_u64(&mut out, s.plan_evictions)?;
                        se_sds::WriteBin::write_u64(&mut out, s.plan_recosts)?;
                        se_sds::WriteBin::write_u64(&mut out, s.wal_poisoned)?;
                        se_sds::WriteBin::write_u64(&mut out, s.wal_appends_failed)?;
                        se_sds::WriteBin::write_u64(&mut out, s.replicas)?;
                        se_sds::WriteBin::write_u64(&mut out, s.repl_records_shipped)?;
                        se_sds::WriteBin::write_u64(&mut out, s.repl_snapshots_served)?;
                        se_sds::WriteBin::write_u64(&mut out, s.repl_resyncs)?;
                        reply(&sink, proto::resp::STATS, &out)?;
                    }
                    _ => reply_err(&sink, "server is shutting down")?,
                }
            }
            proto::req::REPLICATE => {
                match se_sds::ReadBin::read_u64(&mut p) {
                    Ok(from_epoch) => {
                        let (done, ack) = mpsc::channel();
                        let sent = tx
                            .send(Cmd::Replicate {
                                from_epoch,
                                sink: Arc::clone(&sink),
                                done,
                            })
                            .is_ok();
                        // On success the catch-up frames (and every later
                        // live record) already flow from the writer; the
                        // connection is a feed now, and the client sends
                        // nothing further. Only failures get a reply.
                        match (sent, sent.then(|| ack.recv()).and_then(Result::ok)) {
                            (true, Some(Ok(()))) => {}
                            (true, Some(Err(msg))) => reply_err(&sink, &msg)?,
                            _ => reply_err(&sink, "server is shutting down")?,
                        }
                    }
                    Err(e) => reply_err(&sink, &e.to_string())?,
                }
            }
            proto::req::SHUTDOWN => {
                stop.store(true, Ordering::Release);
                let _ = tx.send(Cmd::Shutdown);
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(server_addr);
                reply(&sink, proto::resp::OK, &[])?;
                return Ok(());
            }
            other => reply_err(&sink, &format!("unknown request kind {other:#04x}"))?,
        }
    }
}

pub(crate) fn reply(sink: &ClientSink, kind: u8, payload: &[u8]) -> io::Result<()> {
    let mut sink = sink.lock().expect("client sink poisoned");
    write_frame(&mut *sink, kind, payload)
}

pub(crate) fn reply_err(sink: &ClientSink, msg: &str) -> io::Result<()> {
    let mut payload = Vec::new();
    se_sds::WriteBin::write_str(&mut payload, msg)?;
    reply(sink, proto::resp::ERR, &payload)
}
