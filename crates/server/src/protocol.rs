//! The wire protocol: length-prefixed frames over TCP, with binary
//! codecs for RDF terms, graphs and SPARQL result sets built on the
//! [`se_sds`] little-endian primitives.
//!
//! A frame is `[len: u32 LE][kind: u8][payload: len-1 bytes]` — `len`
//! counts the kind byte plus the payload, so an empty-payload frame has
//! `len == 1`. Request kinds occupy `0x01..=0x7F`, response kinds
//! `0x80..=0xFF`; see [`req`] and [`resp`]. The full frame and payload
//! layouts are documented in `docs/server.md`.

use se_rdf::{Graph, Literal, Term, Triple};
use se_sds::{ReadBin, WriteBin};
use se_sparql::{QueryOptions, ResultSet};
use std::io::{self, Read, Write};

/// Upper bound on a frame's declared length: a malformed or hostile
/// length prefix fails fast instead of provoking a giant allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// Request frame kinds (client → server).
pub mod req {
    /// Payload: inserts [`Graph`] + deletes [`Graph`]. The server may
    /// coalesce the request with other clients' writes into one
    /// group-commit tick; the ack reports the whole tick.
    pub const INGEST: u8 = 0x01;
    /// Payload: query text `str` + [`QueryOptions`](super::QueryOptions)
    /// byte. Executed against the latest published snapshot — never
    /// blocks on the writer.
    pub const QUERY: u8 = 0x02;
    /// Payload: subscription id `str` + query text `str` + options byte.
    /// After every subsequent batch the server pushes this query's
    /// answer set to the subscribing connection.
    pub const SUBSCRIBE: u8 = 0x03;
    /// Empty payload; answered with [`resp::STATS`](super::resp::STATS).
    pub const STATS: u8 = 0x04;
    /// Empty payload; stops the server after acking with
    /// [`resp::OK`](super::resp::OK).
    pub const SHUTDOWN: u8 = 0x05;
    /// Payload: `from_epoch: u64` — the follower's current epoch.
    /// Catch-up: the server replies with either one
    /// [`resp::REPL_RECORD`](super::resp::REPL_RECORD) per batch in
    /// `(from_epoch, leader_epoch]` (when its WAL tail still covers
    /// them) or one [`resp::REPL_SNAPSHOT`](super::resp::REPL_SNAPSHOT)
    /// at the leader's epoch; afterwards the connection receives one
    /// `REPL_RECORD` per group-commit tick, live. The connection becomes
    /// a dedicated replication feed — the client must not send further
    /// requests on it.
    pub const REPLICATE: u8 = 0x06;
}

/// Response frame kinds (server → client).
pub mod resp {
    /// Group-commit ack: epoch `u64`, inserted `u64`, deleted `u64`,
    /// noops `u64`, coalesced requests `u32`, compacted `u8`. Counts are
    /// aggregates over the *whole tick* the request rode in.
    pub const INGEST: u8 = 0x80;
    /// Point-query answer: snapshot epoch `u64` + [`ResultSet`].
    pub const ROWS: u8 = 0x81;
    /// Continuous-query push: subscription id `str`, epoch `u64`, then a
    /// payload-kind byte — [`PUSH_FULL`](super::PUSH_FULL) followed by
    /// one [`ResultSet`] (the whole answer set; a subscription's first
    /// push), or [`PUSH_CHANGES`](super::PUSH_CHANGES) followed by two
    /// `ResultSet`s (rows added, rows removed this tick). Ticks that
    /// leave a query's answers untouched push nothing at all. Arrives
    /// interleaved with request replies; clients must queue it (see
    /// [`Client`](crate::client::Client)).
    pub const PUSH: u8 = 0x82;
    /// Stats: epoch `u64`, triples `u64`, live pins `u64`, snapshots
    /// `u64`, compactions `u64`, subscriptions `u64`, incremental evals
    /// `u64`, full evals `u64`, delta triples added `u64`, delta
    /// triples removed `u64`, plan-cache hits `u64`, plan-cache misses
    /// `u64`, plan compiles `u64`, plan evictions `u64`, plan re-costs
    /// `u64`, WAL poisoned `u64`, WAL appends failed `u64`, replicas
    /// `u64`, replication records shipped `u64`, replication snapshots
    /// served `u64`, replication re-syncs `u64`.
    pub const STATS: u8 = 0x83;
    /// Bare success (subscribe / shutdown ack). Empty payload.
    pub const OK: u8 = 0x84;
    /// Replication bootstrap: epoch `u64` + full [`Graph`]. Sent when
    /// the leader's WAL tail no longer covers the follower's epoch; the
    /// follower rebuilds its store from the graph and aligns to the
    /// carried epoch before consuming further records.
    pub const REPL_SNAPSHOT: u8 = 0x85;
    /// One group-commit tick's WAL record: epoch `u64` + added triples +
    /// removed triples, in the [`se_stream::encode_record_payload`]
    /// layout. Epochs arrive strictly consecutive; a follower seeing a
    /// gap must drop the connection and re-sync.
    pub const REPL_RECORD: u8 = 0x86;
    /// Failure: message `str`. The connection stays usable.
    pub const ERR: u8 = 0xFF;
}

/// [`resp::PUSH`] payload kind: one [`ResultSet`] holding the whole
/// answer set. Sent once per subscription, on its first evaluation.
pub const PUSH_FULL: u8 = 0;
/// [`resp::PUSH`] payload kind: two [`ResultSet`]s — rows added, then
/// rows removed this tick. Sent for every later tick that changed the
/// answer set.
pub const PUSH_CHANGES: u8 = 1;

// ------------------------------------------------------------- framing

/// Writes one frame and flushes the stream.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len() + 1)
        .ok()
        .filter(|l| *l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    w.write_u32(len)?;
    w.write_u8(kind)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Err(UnexpectedEof)` on a cleanly closed peer.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let len = r.read_u32()?;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let kind = r.read_u8()?;
    // The declared length is untrusted until the bytes actually arrive:
    // cap the pre-allocation and read through `take`, so a 12-byte
    // hostile prelude cannot commit MAX_FRAME of memory per connection.
    let want = (len - 1) as usize;
    let mut payload = Vec::with_capacity(want.min(1 << 16));
    r.take(want as u64).read_to_end(&mut payload)?;
    if payload.len() != want {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "frame truncated: declared {want} payload bytes, got {}",
                payload.len()
            ),
        ));
    }
    Ok((kind, payload))
}

// ------------------------------------------------------------- codecs

const TERM_IRI: u8 = 0;
const TERM_BLANK: u8 = 1;
const TERM_LITERAL: u8 = 2;

const LIT_DATATYPE: u8 = 0b01;
const LIT_LANGUAGE: u8 = 0b10;

/// Encodes a term: tag byte, then the tag-specific fields.
pub fn write_term<W: Write>(w: &mut W, term: &Term) -> io::Result<()> {
    match term {
        Term::Iri(iri) => {
            w.write_u8(TERM_IRI)?;
            w.write_str(iri)
        }
        Term::Blank(label) => {
            w.write_u8(TERM_BLANK)?;
            w.write_str(label)
        }
        Term::Literal(lit) => {
            w.write_u8(TERM_LITERAL)?;
            w.write_str(&lit.value)?;
            let flags = lit.datatype.as_ref().map_or(0, |_| LIT_DATATYPE)
                | lit.language.as_ref().map_or(0, |_| LIT_LANGUAGE);
            w.write_u8(flags)?;
            if let Some(dt) = &lit.datatype {
                w.write_str(dt)?;
            }
            if let Some(lang) = &lit.language {
                w.write_str(lang)?;
            }
            Ok(())
        }
    }
}

/// Decodes a term written by [`write_term`].
pub fn read_term<R: Read>(r: &mut R) -> io::Result<Term> {
    match r.read_u8()? {
        TERM_IRI => Ok(Term::iri(r.read_str()?)),
        TERM_BLANK => Ok(Term::blank(r.read_str()?)),
        TERM_LITERAL => {
            let value = r.read_str()?;
            let flags = r.read_u8()?;
            let datatype = if flags & LIT_DATATYPE != 0 {
                Some(r.read_str()?)
            } else {
                None
            };
            let language = if flags & LIT_LANGUAGE != 0 {
                Some(r.read_str()?)
            } else {
                None
            };
            Ok(Term::Literal(Literal {
                value: value.into(),
                datatype: datatype.map(Into::into),
                language: language.map(Into::into),
            }))
        }
        tag => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown term tag {tag}"),
        )),
    }
}

/// Encodes a graph: triple count, then subject/predicate/object terms.
pub fn write_graph<W: Write>(w: &mut W, graph: &Graph) -> io::Result<()> {
    w.write_u64(graph.len() as u64)?;
    for t in graph.iter() {
        write_term(w, &t.subject)?;
        write_term(w, &t.predicate)?;
        write_term(w, &t.object)?;
    }
    Ok(())
}

/// Decodes a graph written by [`write_graph`]. Malformed triples (a
/// literal subject, say) surface as `InvalidData`, not a panic.
pub fn read_graph<R: Read>(r: &mut R) -> io::Result<Graph> {
    let n = r.read_u64()?;
    if n > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "graph triple count exceeds the frame bound",
        ));
    }
    // The count is untrusted: cap the pre-allocation and let push grow
    // the vec if a (frame-bounded) payload really carries more.
    let mut triples = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        let subject = read_term(r)?;
        let predicate = read_term(r)?;
        let object = read_term(r)?;
        if !subject.is_resource() || predicate.as_iri().is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed triple: subject must be a resource, predicate an IRI",
            ));
        }
        triples.push(Triple {
            subject,
            predicate,
            object,
        });
    }
    Ok(Graph::from_triples(triples))
}

const OPT_REASONING: u8 = 0b001;
const OPT_OPTIMIZE: u8 = 0b010;
const OPT_MERGE_JOIN: u8 = 0b100;

/// Encodes query options as one flags byte.
pub fn write_options<W: Write>(w: &mut W, o: &QueryOptions) -> io::Result<()> {
    let flags = if o.reasoning { OPT_REASONING } else { 0 }
        | if o.optimize { OPT_OPTIMIZE } else { 0 }
        | if o.merge_join { OPT_MERGE_JOIN } else { 0 };
    w.write_u8(flags)
}

/// Decodes the options byte.
pub fn read_options<R: Read>(r: &mut R) -> io::Result<QueryOptions> {
    let flags = r.read_u8()?;
    Ok(QueryOptions {
        reasoning: flags & OPT_REASONING != 0,
        optimize: flags & OPT_OPTIMIZE != 0,
        merge_join: flags & OPT_MERGE_JOIN != 0,
    })
}

/// Encodes a result set: variables, then rows of optional terms.
pub fn write_result_set<W: Write>(w: &mut W, rs: &ResultSet) -> io::Result<()> {
    w.write_u32(rs.variables.len() as u32)?;
    for v in &rs.variables {
        w.write_str(v)?;
    }
    w.write_u64(rs.rows.len() as u64)?;
    for row in &rs.rows {
        for cell in row {
            match cell {
                Some(term) => {
                    w.write_u8(1)?;
                    write_term(w, term)?;
                }
                None => w.write_u8(0)?,
            }
        }
    }
    Ok(())
}

/// Decodes a result set written by [`write_result_set`].
pub fn read_result_set<R: Read>(r: &mut R) -> io::Result<ResultSet> {
    let nvars = r.read_u32()? as usize;
    let mut variables = Vec::with_capacity(nvars.min(1024));
    for _ in 0..nvars {
        variables.push(r.read_str()?);
    }
    let nrows = r.read_u64()?;
    let mut rows = Vec::new();
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(nvars.min(1024));
        for _ in 0..nvars {
            row.push(match r.read_u8()? {
                0 => None,
                _ => Some(read_term(r)?),
            });
        }
        rows.push(row);
    }
    Ok(ResultSet { variables, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_codec_round_trips_every_variant() {
        let terms = [
            Term::iri("http://x/a"),
            Term::blank("b0"),
            Term::literal("plain"),
            Term::Literal(Literal::typed(
                "3",
                "http://www.w3.org/2001/XMLSchema#integer",
            )),
            Term::Literal(Literal::lang("bonjour", "fr")),
        ];
        for term in &terms {
            let mut buf = Vec::new();
            write_term(&mut buf, term).unwrap();
            let back = read_term(&mut buf.as_slice()).unwrap();
            assert_eq!(&back, term);
        }
    }

    #[test]
    fn graph_codec_rejects_malformed_triples() {
        let mut buf = Vec::new();
        buf.write_u64(1).unwrap();
        write_term(&mut buf, &Term::literal("bad-subject")).unwrap();
        write_term(&mut buf, &Term::iri("http://x/p")).unwrap();
        write_term(&mut buf, &Term::iri("http://x/o")).unwrap();
        assert!(read_graph(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn result_set_codec_round_trips_unbound_cells() {
        let rs = ResultSet {
            variables: vec!["s".into(), "o".into()],
            rows: vec![
                vec![Some(Term::iri("http://x/a")), None],
                vec![None, Some(Term::literal("42"))],
            ],
        };
        let mut buf = Vec::new();
        write_result_set(&mut buf, &rs).unwrap();
        let back = read_result_set(&mut buf.as_slice()).unwrap();
        assert_eq!(back.variables, rs.variables);
        assert_eq!(format!("{:?}", back.rows), format!("{:?}", rs.rows));
    }

    /// A hostile declared length (string or triple count) far beyond the
    /// actual payload must come back as a clean error — not an up-front
    /// allocation of that size aborting the process (the server parses
    /// every payload with these codecs).
    #[test]
    fn hostile_declared_lengths_error_instead_of_allocating() {
        // An IRI term whose string claims ~8 EB of content.
        let mut buf = vec![TERM_IRI];
        buf.write_u64(u64::MAX / 2).unwrap();
        buf.extend_from_slice(b"short");
        assert!(read_term(&mut buf.as_slice()).is_err());

        // A graph claiming the maximum in-bound triple count with a
        // near-empty body: the capacity cap keeps the pre-allocation
        // small and the first missing term ends the parse cleanly.
        let mut buf = Vec::new();
        buf.write_u64(MAX_FRAME as u64).unwrap();
        assert!(read_graph(&mut buf.as_slice()).is_err());

        // A result set claiming u32::MAX variables backed by nothing.
        let mut buf = Vec::new();
        buf.write_u32(u32::MAX).unwrap();
        assert!(read_result_set(&mut buf.as_slice()).is_err());
    }

    /// A frame whose length prefix declares (just under) MAX_FRAME but
    /// whose body is a handful of bytes must error out without first
    /// committing the declared size: 12 hostile bytes used to cost the
    /// server a 64 MiB zeroed allocation per connection.
    #[test]
    fn hostile_frame_length_errors_without_allocating() {
        let mut buf = Vec::new();
        buf.write_u32(MAX_FRAME).unwrap();
        buf.write_u8(req::QUERY).unwrap();
        buf.extend_from_slice(b"tiny");
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(
            err.to_string().contains("truncated"),
            "want the truncation diagnostic, got: {err}"
        );
    }

    #[test]
    fn frame_round_trip_and_length_guard() {
        let mut buf = Vec::new();
        write_frame(&mut buf, req::QUERY, b"payload").unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(kind, req::QUERY);
        assert_eq!(payload, b"payload");

        let mut bad = Vec::new();
        bad.write_u32(MAX_FRAME + 1).unwrap();
        bad.write_u8(req::QUERY).unwrap();
        assert!(read_frame(&mut bad.as_slice()).is_err());
    }
}
