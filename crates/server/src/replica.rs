//! WAL-shipping read replicas: a follower process that replays the
//! leader's per-tick WAL records into its own store and serves QUERY /
//! SUBSCRIBE / STATS traffic from its published snapshot.
//!
//! # Architecture
//!
//! ```text
//!   leader se-server ──REPL_RECORD per tick──▶ feed thread
//!        ▲                                      │ replay + publish
//!        │ REPLICATE <from_epoch>               ▼
//!        └────────────(re-sync)──────── snapshot slot ◀── conn threads
//!                                                          QUERY/SUBSCRIBE
//! ```
//!
//! One **feed thread** owns the replica's
//! [`StreamSession<ShardedHybridStore>`] — the exact counterpart of the
//! leader's writer thread, with the leader's record stream in place of
//! client ingest. It connects to the leader, sends
//! [`req::REPLICATE`](crate::protocol::req::REPLICATE) carrying its
//! current epoch, and then replays whatever comes back:
//!
//! * [`resp::REPL_RECORD`](crate::protocol::resp::REPL_RECORD) — one
//!   group-commit tick's net delta. Records must arrive with strictly
//!   consecutive epochs; after each replay the feed publishes a fresh
//!   snapshot and pushes continuous-query changes to subscribers, so a
//!   replica-side SUBSCRIBE behaves exactly like one on the leader.
//! * [`resp::REPL_SNAPSHOT`](crate::protocol::resp::REPL_SNAPSHOT) — a
//!   full-state bootstrap, sent when the leader's WAL tail no longer
//!   covers the follower's epoch. The feed rebuilds its store from the
//!   graph, aligns to the carried epoch, and re-registers every live
//!   subscription (their next frames are full sets again).
//!
//! Any gap, decode failure, or disconnect drops the feed and re-syncs
//! from scratch: reconnect, `REPLICATE <current epoch>`, and let the
//! leader pick records or snapshot. Client connections to the replica
//! survive re-syncs — only the staleness of their reads varies.
//!
//! Ingest requests are refused (`read-only replica`); writes belong on
//! the leader. The replica keeps no WAL of its own: after a crash it
//! restarts empty and bootstraps over the wire.

use crate::protocol::{self as proto, read_frame, write_frame};
use crate::server::{
    push_results, serve_connection, stats, subscribe, Cmd, ReplCounters, Sub, CONN_POLL,
};
use se_ontology::Ontology;
use se_rdf::Graph;
use se_sparql::{PlanCache, QueryOptions};
use se_stream::{ShardedHybridStore, StoreSnapshot, StreamSession};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Replica tuning knobs.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Shard count for the replica's own store. Need not match the
    /// leader's — replication ships term-space triples, not shard state.
    pub shards: usize,
    /// Pause between re-sync attempts after a disconnect or gap.
    pub reconnect: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            reconnect: Duration::from_millis(200),
        }
    }
}

/// A running replica: its bound address plus the threads to join.
pub struct Replica {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    feed: Option<JoinHandle<()>>,
    resync_req: Arc<AtomicBool>,
}

impl Replica {
    /// Binds `addr` (port 0 for ephemeral) and starts following
    /// `leader`. The store is built empty from `ontology` and caught up
    /// over the wire; clients may connect immediately and will read the
    /// replica's current (possibly stale) snapshot.
    pub fn start(
        ontology: Ontology,
        leader: impl ToSocketAddrs,
        addr: impl ToSocketAddrs,
        config: ReplicaConfig,
    ) -> io::Result<Replica> {
        let leader = leader
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "leader address empty"))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let store = build_store(&ontology, &Graph::new(), config.shards)?;
        let slot = Arc::new(Mutex::new(store.snapshot()));
        let (tx, rx) = mpsc::channel::<Cmd>();
        let stop = Arc::new(AtomicBool::new(false));
        let resync_req = Arc::new(AtomicBool::new(false));
        let plan_cache = Arc::new(PlanCache::new());

        let feed = {
            let slot = Arc::clone(&slot);
            let cache = Arc::clone(&plan_cache);
            let stop = Arc::clone(&stop);
            let resync_req = Arc::clone(&resync_req);
            thread::Builder::new()
                .name("se-replica-feed".into())
                .spawn(move || {
                    feed_loop(
                        FeedState::new(store, ontology, config, cache),
                        leader,
                        rx,
                        slot,
                        stop,
                        resync_req,
                    )
                })?
        };

        let accept = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("se-replica-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let tx = tx.clone();
                        let slot = Arc::clone(&slot);
                        let stop = Arc::clone(&stop);
                        let cache = Arc::clone(&plan_cache);
                        let addr = local;
                        let _ = thread::Builder::new().name("se-replica-conn".into()).spawn(
                            move || {
                                let _ = serve_connection(stream, tx, slot, stop, cache, addr);
                            },
                        );
                    }
                })?
        };

        Ok(Replica {
            addr: local,
            accept: Some(accept),
            feed: Some(feed),
            resync_req,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drops the current replication feed and re-syncs from the leader —
    /// an operational control for failover drills and for recovering a
    /// follower suspected of divergence without restarting the process.
    /// Read traffic keeps flowing from the published snapshot throughout.
    pub fn force_resync(&self) {
        self.resync_req.store(true, Ordering::Release);
    }

    /// Waits for the replica to stop (a client sent `SHUTDOWN`).
    pub fn join(mut self) {
        if let Some(f) = self.feed.take() {
            let _ = f.join();
        }
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}

fn build_store(ontology: &Ontology, data: &Graph, shards: usize) -> io::Result<ShardedHybridStore> {
    ShardedHybridStore::build(ontology, data, shards)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Everything the feed thread owns: the session, the live subscription
/// sinks, and the query texts needed to re-register them after a
/// snapshot bootstrap replaces the store.
struct FeedState {
    session: StreamSession<ShardedHybridStore>,
    subs: HashMap<String, Sub>,
    /// id → (query text, options): survives store rebuilds.
    specs: HashMap<String, (String, QueryOptions)>,
    ontology: Ontology,
    config: ReplicaConfig,
    cache: Arc<PlanCache>,
    repl: ReplCounters,
}

impl FeedState {
    fn new(
        store: ShardedHybridStore,
        ontology: Ontology,
        config: ReplicaConfig,
        cache: Arc<PlanCache>,
    ) -> Self {
        let mut session = StreamSession::new(store);
        session.registry_mut().set_plan_cache(Arc::clone(&cache));
        session.registry_mut().set_emit_full(false);
        Self {
            session,
            subs: HashMap::new(),
            specs: HashMap::new(),
            ontology,
            config,
            cache,
            repl: ReplCounters::default(),
        }
    }

    /// Replaces the store (snapshot bootstrap, or reset after the leader
    /// lost history) and re-registers every live subscription. Each
    /// subscriber's next push is a full frame again: the differential
    /// chain broke with the old store.
    fn install_store(&mut self, store: ShardedHybridStore) {
        let mut session = StreamSession::new(store);
        session
            .registry_mut()
            .set_plan_cache(Arc::clone(&self.cache));
        session.registry_mut().set_emit_full(false);
        self.session = session;
        let specs: Vec<_> = self
            .specs
            .iter()
            .map(|(id, (text, options))| (id.clone(), text.clone(), options.clone()))
            .collect();
        for (id, text, options) in specs {
            if self
                .session
                .register_query(id.clone(), &text, options)
                .is_err()
            {
                // The text registered once; a parse failure now means the
                // spec is stale garbage — drop the subscription.
                self.specs.remove(&id);
                self.subs.remove(&id);
                continue;
            }
            if let Some(sub) = self.subs.get_mut(&id) {
                sub.primed = false;
            }
        }
    }
}

/// Commands drained between leader frames. `true` means shutdown.
fn drain_cmds(state: &mut FeedState, rx: &mpsc::Receiver<Cmd>) -> bool {
    loop {
        match rx.try_recv() {
            Ok(Cmd::Ingest { done, .. }) => {
                let _ = done.send(Err("read-only replica: ingest on the leader".into()));
            }
            Ok(Cmd::Subscribe {
                id,
                text,
                options,
                sink,
                done,
            }) => {
                state
                    .specs
                    .insert(id.clone(), (text.clone(), options.clone()));
                subscribe(
                    &mut state.session,
                    &mut state.subs,
                    id,
                    text,
                    options,
                    sink,
                    done,
                );
            }
            Ok(Cmd::Stats { done }) => {
                let _ = done.send(stats(&state.session, state.subs.len(), state.repl));
            }
            Ok(Cmd::Replicate { done, .. }) => {
                let _ = done.send(Err("replicas do not serve replication feeds".into()));
            }
            Ok(Cmd::Shutdown) | Err(TryRecvError::Disconnected) => return true,
            Err(TryRecvError::Empty) => return false,
        }
    }
}

fn feed_loop(
    mut state: FeedState,
    leader: SocketAddr,
    rx: mpsc::Receiver<Cmd>,
    slot: Arc<Mutex<StoreSnapshot>>,
    stop: Arc<AtomicBool>,
    resync_req: Arc<AtomicBool>,
) {
    let mut first_attach = true;
    'resync: loop {
        if drain_cmds(&mut state, &rx) || stop.load(Ordering::Acquire) {
            return;
        }
        if !first_attach {
            state.repl.resyncs += 1;
            thread::sleep(state.config.reconnect);
        }
        first_attach = false;
        let Ok(mut feed) = TcpStream::connect(leader) else {
            continue 'resync;
        };
        let mut payload = Vec::new();
        let handshake = se_sds::WriteBin::write_u64(&mut payload, state.session.store().epoch())
            .and_then(|()| write_frame(&mut feed, proto::req::REPLICATE, &payload));
        if handshake.is_err() || feed.set_read_timeout(Some(CONN_POLL)).is_err() {
            continue 'resync;
        }

        loop {
            if drain_cmds(&mut state, &rx) || stop.load(Ordering::Acquire) {
                return;
            }
            if resync_req.swap(false, Ordering::AcqRel) {
                continue 'resync;
            }
            // Same bounded-peek pattern as the server's connection
            // threads: observe shutdown between frames, never tear one.
            let mut probe = [0u8; 1];
            match feed.peek(&mut probe) {
                Ok(0) => continue 'resync, // leader hung up
                Ok(_) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => continue 'resync,
            }
            if feed.set_read_timeout(None).is_err() {
                continue 'resync;
            }
            let Ok((kind, payload)) = read_frame(&mut feed) else {
                continue 'resync;
            };
            if feed.set_read_timeout(Some(CONN_POLL)).is_err() {
                continue 'resync;
            }
            match kind {
                proto::resp::REPL_RECORD => {
                    let Ok(rec) = se_stream::decode_record_payload(&payload) else {
                        continue 'resync;
                    };
                    let expected = state.session.store().epoch() + 1;
                    if rec.epoch != expected {
                        // A gap means this feed skipped history — replaying
                        // would silently diverge. Re-sync instead.
                        continue 'resync;
                    }
                    let inserts = Graph::from_triples(rec.delta.added.iter().cloned());
                    let deletes = Graph::from_triples(rec.delta.removed.iter().cloned());
                    let Ok(outcome) = state.session.apply_batch(&inserts, &deletes) else {
                        continue 'resync;
                    };
                    let epoch = state.session.store().epoch();
                    *slot.lock().expect("snapshot slot poisoned") =
                        state.session.store().snapshot();
                    push_results(&mut state.session, &mut state.subs, outcome.results, epoch);
                }
                proto::resp::REPL_SNAPSHOT => {
                    let mut p = payload.as_slice();
                    let decoded = se_sds::ReadBin::read_u64(&mut p)
                        .and_then(|epoch| proto::read_graph(&mut p).map(|g| (epoch, g)));
                    let Ok((epoch, graph)) = decoded else {
                        continue 'resync;
                    };
                    let Ok(mut store) = build_store(&state.ontology, &graph, state.config.shards)
                    else {
                        continue 'resync;
                    };
                    store.align_epoch(epoch);
                    state.install_store(store);
                    *slot.lock().expect("snapshot slot poisoned") =
                        state.session.store().snapshot();
                }
                proto::resp::ERR => {
                    // The leader refused the handshake — it restarted with
                    // less history than we hold. Reset to empty and
                    // bootstrap over the wire like a fresh follower.
                    let Ok(store) =
                        build_store(&state.ontology, &Graph::new(), state.config.shards)
                    else {
                        continue 'resync;
                    };
                    state.install_store(store);
                    *slot.lock().expect("snapshot slot poisoned") =
                        state.session.store().snapshot();
                    continue 'resync;
                }
                _ => continue 'resync,
            }
        }
    }
}
