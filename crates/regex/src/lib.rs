//! # se-regex — a small regular-expression engine for SPARQL `regex()`
//!
//! The motivating query of the paper (§2) filters on unit IRIs with
//! `FILTER`/`BIND` expressions such as
//! `regex(str(?u1), "http://qudt.org/vocab/unit/BAR")`. SPARQL's `regex`
//! follows XPath/XQuery semantics: an *unanchored* match — the pattern may
//! occur anywhere in the input.
//!
//! This engine supports the pattern features those workloads (and a
//! reasonable superset) need:
//!
//! * literal characters, `.` (any char),
//! * character classes `[abc]`, ranges `[a-z0-9]`, negation `[^...]`,
//! * anchors `^` and `$`,
//! * quantifiers `*`, `+`, `?` (greedy, applied to the previous atom),
//! * alternation `|` and grouping `(...)`,
//! * escapes `\.`  `\\` `\d` `\w` `\s` and their negations `\D` `\W` `\S`.
//!
//! Implementation: recursive-descent parse into an AST, then a
//! backtracking matcher. Patterns are compiled once ([`Regex::new`]) and
//! reused across candidate strings, which is the access pattern of a
//! continuous SPARQL query evaluated once per incoming graph.

use std::fmt;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    ast: Ast,
    pattern: String,
}

/// A pattern compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone)]
enum Ast {
    /// Concatenation of sub-patterns.
    Seq(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// One literal character.
    Char(char),
    /// `.` — any character.
    AnyChar,
    /// A character class.
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    /// `^`.
    StartAnchor,
    /// `$`.
    EndAnchor,
    /// `x*` / `x+` / `x?`.
    Repeat {
        inner: Box<Ast>,
        min: u32,
        many: bool,
    },
}

#[derive(Debug, Clone)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

impl Regex {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let mut parser = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let ast = parser.parse_alt()?;
        if parser.pos != parser.chars.len() {
            return Err(RegexError {
                position: parser.pos,
                message: format!("unexpected character {:?}", parser.chars[parser.pos]),
            });
        }
        Ok(Self {
            ast,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// SPARQL `regex()` semantics: `true` if the pattern matches anywhere
    /// in `input`.
    pub fn is_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        // Try every start position (a leading ^ prunes all but the first).
        for start in 0..=chars.len() {
            if match_ast(&self.ast, &chars, start, &mut |_| true) {
                return true;
            }
            if matches!(first_atom(&self.ast), Some(Ast::StartAnchor)) && start == 0 {
                break; // anchored pattern can only match at 0
            }
        }
        false
    }

    /// `true` if the pattern matches the *entire* input.
    pub fn is_full_match(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        match_ast(&self.ast, &chars, 0, &mut |pos| pos == chars.len())
    }
}

fn first_atom(ast: &Ast) -> Option<&Ast> {
    match ast {
        Ast::Seq(items) => items.first().and_then(first_atom),
        other => Some(other),
    }
}

/// Backtracking matcher: attempts to match `ast` at `pos`, calling `k`
/// (the continuation) with the end position of every candidate match until
/// `k` returns `true`.
fn match_ast(ast: &Ast, input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match ast {
        Ast::Seq(items) => match_seq(items, input, pos, k),
        Ast::Alt(branches) => branches.iter().any(|b| match_ast(b, input, pos, k)),
        Ast::Char(c) => {
            if input.get(pos) == Some(c) {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::AnyChar => {
            if pos < input.len() {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::Class { negated, items } => match input.get(pos) {
            Some(&c) if class_matches(items, c) != *negated => k(pos + 1),
            _ => false,
        },
        Ast::StartAnchor => {
            if pos == 0 {
                k(pos)
            } else {
                false
            }
        }
        Ast::EndAnchor => {
            if pos == input.len() {
                k(pos)
            } else {
                false
            }
        }
        Ast::Repeat { inner, min, many } => {
            // Greedy: collect all reachable end positions by repeated
            // application, then try them longest-first.
            let mut ends = vec![pos];
            let mut frontier = vec![pos];
            loop {
                let mut next = Vec::new();
                for &p in &frontier {
                    match_ast(inner, input, p, &mut |end| {
                        if end > p && !ends.contains(&end) {
                            ends.push(end);
                            next.push(end);
                        }
                        false // keep enumerating
                    });
                }
                if next.is_empty() || (!*many && ends.len() > 1) {
                    break;
                }
                if !*many {
                    break;
                }
                frontier = next;
            }
            let min_count = *min as usize;
            // ends[i] is reachable with i repetitions (BFS order).
            for (count, &end) in ends.iter().enumerate().rev() {
                if count >= min_count && k(end) {
                    return true;
                }
            }
            false
        }
    }
}

fn match_seq(items: &[Ast], input: &[char], pos: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
    match items.split_first() {
        None => k(pos),
        Some((head, rest)) => match_ast(head, input, pos, &mut |next| {
            match_seq(rest, input, next, k)
        }),
    }
}

fn class_matches(items: &[ClassItem], c: char) -> bool {
    items.iter().any(|item| match item {
        ClassItem::Char(x) => c == *x,
        ClassItem::Range(lo, hi) => *lo <= c && c <= *hi,
        ClassItem::Digit(pos) => c.is_ascii_digit() == *pos,
        ClassItem::Word(pos) => (c.is_alphanumeric() || c == '_') == *pos,
        ClassItem::Space(pos) => c.is_whitespace() == *pos,
    })
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    /// alt := seq ('|' seq)*
    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_seq()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_seq()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    /// seq := (atom quantifier?)*
    fn parse_seq(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            let atom = match self.peek() {
                Some('*') => {
                    self.bump();
                    Ast::Repeat {
                        inner: Box::new(atom),
                        min: 0,
                        many: true,
                    }
                }
                Some('+') => {
                    self.bump();
                    Ast::Repeat {
                        inner: Box::new(atom),
                        min: 1,
                        many: true,
                    }
                }
                Some('?') => {
                    self.bump();
                    Ast::Repeat {
                        inner: Box::new(atom),
                        min: 0,
                        many: false,
                    }
                }
                _ => atom,
            };
            items.push(atom);
        }
        Ok(Ast::Seq(items))
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => {
                Err(self.error(format!("quantifier {c:?} with nothing to repeat")))
            }
            Some(c) => Ok(Ast::Char(c)),
            None => Err(self.error("unexpected end of pattern")),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        let Some(c) = self.bump() else {
            return Err(self.error("dangling backslash"));
        };
        let class = |item: ClassItem| Ast::Class {
            negated: false,
            items: vec![item],
        };
        Ok(match c {
            'd' => class(ClassItem::Digit(true)),
            'D' => class(ClassItem::Digit(false)),
            'w' => class(ClassItem::Word(true)),
            'W' => class(ClassItem::Word(false)),
            's' => class(ClassItem::Space(true)),
            'S' => class(ClassItem::Space(false)),
            'n' => Ast::Char('\n'),
            't' => Ast::Char('\t'),
            'r' => Ast::Char('\r'),
            // Any other escaped character matches itself (covers \. \\ \/ \[ ...).
            c => Ast::Char(c),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                Some(']') if !items.is_empty() => break,
                Some(']') => items.push(ClassItem::Char(']')), // first ']' is literal
                Some('\\') => {
                    let Some(c) = self.bump() else {
                        return Err(self.error("dangling backslash in class"));
                    };
                    items.push(match c {
                        'd' => ClassItem::Digit(true),
                        'w' => ClassItem::Word(true),
                        's' => ClassItem::Space(true),
                        'n' => ClassItem::Char('\n'),
                        't' => ClassItem::Char('\t'),
                        c => ClassItem::Char(c),
                    });
                }
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = self.bump().expect("checked by is_some_and");
                        if hi < c {
                            return Err(self.error(format!("invalid range {c}-{hi}")));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
                None => return Err(self.error("unclosed character class")),
            }
        }
        Ok(Ast::Class { negated, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(input)
    }

    #[test]
    fn literal_substring_match() {
        // The paper's actual use: unanchored IRI substring tests.
        assert!(m(
            "http://qudt.org/vocab/unit/BAR",
            "http://qudt.org/vocab/unit/BAR"
        ));
        assert!(m("unit/BAR", "http://qudt.org/vocab/unit/BAR"));
        assert!(!m("unit/HectoPA", "http://qudt.org/vocab/unit/BAR"));
        assert!(m("", "anything"));
    }

    #[test]
    fn dot_matches_any() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "axc"));
        assert!(!m("a.c", "ac"));
        assert!(!m("a.c", "a\u{0}"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^bcd", "abcdef"));
        assert!(m("def$", "abcdef"));
        assert!(!m("abc$", "abcdef"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }

    #[test]
    fn star_quantifier() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab*c", "adc"));
        assert!(m("a.*z", "a-------z"));
    }

    #[test]
    fn plus_quantifier() {
        assert!(!m("ab+c", "ac"));
        assert!(m("ab+c", "abc"));
        assert!(m("ab+c", "abbbc"));
    }

    #[test]
    fn question_quantifier() {
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
        assert!(!m("colou?r", "colouur"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[abc]x", "bx"));
        assert!(!m("[abc]x", "dx"));
        assert!(m("[a-z]+", "hello"));
        assert!(m("[0-9]+", "a42b"));
        assert!(!m("^[0-9]+$", "a42b"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("^[^0-9]$", "4"));
    }

    #[test]
    fn escape_classes() {
        assert!(m(r"\d+", "abc123"));
        assert!(!m(r"^\d+$", "abc"));
        assert!(m(r"\w+", "hello_world"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\s", "ab"));
        assert!(m(r"\D", "x1"));
        assert!(m(r"\.", "a.b"));
        assert!(!m(r"^\.$", "x"));
    }

    #[test]
    fn alternation() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("cat|dog", "catfish"));
        assert!(!m("cat|dog", "bird"));
        assert!(m("^(cat|dog)$", "cat"));
        assert!(!m("^(cat|dog)$", "catdog"));
    }

    #[test]
    fn groups_with_quantifiers() {
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
        assert!(m("^(ab)*$", ""));
        assert!(m("a(b|c)d", "acd"));
    }

    #[test]
    fn bar_vs_hectopa_discrimination() {
        // The exact BIND expression of the motivating example: the pattern
        // for BAR must not match the HectoPA IRI and vice versa.
        let bar = Regex::new("http://qudt.org/vocab/unit/BAR").unwrap();
        let hecto = Regex::new("http://qudt.org/vocab/unit/HectoPA").unwrap();
        assert!(bar.is_match("http://qudt.org/vocab/unit/BAR"));
        assert!(!bar.is_match("http://qudt.org/vocab/unit/HectoPA"));
        assert!(hecto.is_match("http://qudt.org/vocab/unit/HectoPA"));
        assert!(!hecto.is_match("http://qudt.org/vocab/unit/BAR"));
    }

    #[test]
    fn full_match() {
        let re = Regex::new("ab+").unwrap();
        assert!(re.is_full_match("abbb"));
        assert!(!re.is_full_match("abbbc"));
        assert!(!re.is_full_match("xab"));
    }

    #[test]
    fn unicode_input() {
        assert!(m("é", "café"));
        assert!(m("^caf.$", "café"));
        assert!(m(r"\w+", "日本語"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("[unclosed").is_err());
        assert!(Regex::new("*dangling").is_err());
        assert!(Regex::new("back\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a)b").is_err());
    }

    #[test]
    fn class_with_leading_bracket() {
        assert!(m("[]]", "]"));
        assert!(m("[^]]", "x"));
        assert!(!m("^[^]]$", "]"));
    }

    #[test]
    fn greedy_star_backtracks() {
        // .* must backtrack to let the suffix match.
        assert!(m("^a.*bc$", "axxbcxxbc"));
        assert!(m("^.*b$", "aaab"));
        assert!(!m("^.*b$", "aaac"));
    }

    #[test]
    fn dash_at_class_edges_is_literal() {
        assert!(m("[a-]", "-"));
        assert!(m("[a-]", "a"));
        assert!(m("[-a]", "-"));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn literal_patterns_equal_substring_search(
                needle in "[a-z]{1,8}",
                haystack in "[a-z]{0,40}",
            ) {
                let re = Regex::new(&needle).unwrap();
                prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
            }

            #[test]
            fn anchored_literal_equals_equality(
                s in "[a-z]{0,10}",
                t in "[a-z]{0,10}",
            ) {
                let re = Regex::new(&format!("^{s}$")).unwrap();
                prop_assert_eq!(re.is_match(&t), s == t);
            }

            #[test]
            fn compilation_never_panics(pattern in "[ -~]{0,20}") {
                let _ = Regex::new(&pattern);
            }
        }
    }
}
