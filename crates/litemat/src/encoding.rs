//! The LiteMat prefix-code encoder (paper §3.2, Figure 2).
//!
//! Given a term hierarchy (a forest of `child ⊑ parent` edges anchored at a
//! virtual root such as `owl:Thing`), the encoder assigns:
//!
//! 1. local identifier `1` to the root;
//! 2. to the `n` direct children of a term, local identifiers `1..=n` on
//!    `⌈log₂(n+1)⌉` bits, appended to the parent's encoding (top-down);
//! 3. a *normalization* step pads every encoding with trailing zero bits so
//!    all identifiers share the same binary length `L`.
//!
//! The paper's Figure 2 example — `A ⊑ Thing`, `B ⊑ Thing`, `C ⊑ B`,
//! `D ⊑ B` — yields `Thing=10000₂=16`, `A=10100₂=20`, `B=11000₂=24`,
//! `C=11001₂=25`, `D=11010₂=26`, and the interval of `B` is `[24, 28)`,
//! covering exactly `{B, C, D}`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The contiguous identifier interval `[lower, upper)` of a term and all its
/// direct and indirect sub-terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdInterval {
    /// Inclusive lower bound — the term's own identifier.
    pub lower: u64,
    /// Exclusive upper bound.
    pub upper: u64,
}

impl IdInterval {
    /// `true` if `id` denotes the term itself or one of its sub-terms.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.lower <= id && id < self.upper
    }

    /// `true` if the interval covers a single identifier (a leaf term).
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.upper == self.lower + 1
    }

    /// Number of identifiers covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.upper - self.lower
    }

    /// `true` if the interval is empty (never produced by the encoder).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.upper <= self.lower
    }
}

impl fmt::Display for IdInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lower, self.upper)
    }
}

/// Errors raised while encoding a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// The hierarchy contains a cycle through the named term.
    Cycle(String),
    /// The encoding would exceed 64 bits.
    TooDeep { total_bits: u32 },
    /// A term was given two different parents (LiteMat's base scheme encodes
    /// single-inheritance hierarchies; multiple inheritance is LiteMat++,
    /// listed as future work in the paper).
    MultipleParents { term: String },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::Cycle(t) => write!(f, "hierarchy cycle through {t}"),
            EncodingError::TooDeep { total_bits } => {
                write!(f, "LiteMat encoding needs {total_bits} bits (max 64)")
            }
            EncodingError::MultipleParents { term } => {
                write!(
                    f,
                    "term {term} has multiple parents (single inheritance required)"
                )
            }
        }
    }
}

impl std::error::Error for EncodingError {}

/// Per-term metadata stored in the LiteMat dictionaries (paper Figure 2(b)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermEncoding {
    /// The normalized integer identifier.
    pub id: u64,
    /// Binary length *before* normalization (prefix + local bits). The paper
    /// calls this the "local length"; it is what the interval computation
    /// needs.
    pub local_len: u32,
}

/// A complete LiteMat encoding of one term hierarchy.
#[derive(Debug, Clone, Default)]
pub struct LiteMatEncoding {
    /// term → (id, local length)
    by_term: HashMap<Arc<str>, TermEncoding>,
    /// id → term (ids are sparse in `[0, 2^L)`).
    by_id: BTreeMap<u64, Arc<str>>,
    /// Normalized length `L` in bits.
    total_len: u32,
    root: Option<Arc<str>>,
}

impl LiteMatEncoding {
    /// Encodes a hierarchy given as `(child, parent)` edges plus the root
    /// term. Terms reachable from the root are encoded; the root itself
    /// receives local identifier `1`.
    ///
    /// Terms appearing only as parents are encoded too. Orphan terms (no
    /// parent edge and not the root) are attached directly under the root,
    /// which mirrors how LiteMat anchors unclassified concepts at
    /// `owl:Thing`.
    pub fn encode(
        root: &str,
        edges: &[(String, String)],
        extra_terms: &[String],
    ) -> Result<Self, EncodingError> {
        // child -> parent, detecting multiple inheritance.
        let mut parent_of: HashMap<&str, &str> = HashMap::new();
        for (child, parent) in edges {
            if child == parent {
                continue; // reflexive axioms are trivially satisfied
            }
            if let Some(existing) = parent_of.get(child.as_str()) {
                if *existing != parent.as_str() {
                    return Err(EncodingError::MultipleParents {
                        term: child.clone(),
                    });
                }
            } else {
                parent_of.insert(child, parent);
            }
        }
        // children lists in deterministic (sorted) order.
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut all_terms: Vec<&str> = Vec::new();
        for (child, parent) in parent_of.iter() {
            children.entry(parent).or_default().push(child);
            all_terms.push(child);
            all_terms.push(parent);
        }
        for t in extra_terms {
            all_terms.push(t);
        }
        all_terms.push(root);
        all_terms.sort_unstable();
        all_terms.dedup();
        for list in children.values_mut() {
            list.sort_unstable();
        }
        // Attach orphans (terms without a parent chain reaching the root).
        for &term in &all_terms {
            if term != root && !parent_of.contains_key(term) {
                children.entry(root).or_default().push(term);
            }
        }
        for list in children.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        // Depth-first top-down assignment of prefix codes. Codes are tracked
        // as (bits, length) pairs until the final normalization.
        struct Frame<'s> {
            term: &'s str,
            code: u64,
            len: u32,
        }
        let mut stack = vec![Frame {
            term: root,
            code: 1,
            len: 1,
        }];
        let mut raw: Vec<(&str, u64, u32)> = Vec::with_capacity(all_terms.len());
        let mut visited: HashMap<&str, ()> = HashMap::new();
        while let Some(frame) = stack.pop() {
            if visited.insert(frame.term, ()).is_some() {
                return Err(EncodingError::Cycle(frame.term.to_string()));
            }
            raw.push((frame.term, frame.code, frame.len));
            if let Some(kids) = children.get(frame.term) {
                let n = kids.len() as u64;
                let local_bits = 64 - n.leading_zeros(); // ⌈log₂(n+1)⌉
                for (i, &kid) in kids.iter().enumerate() {
                    let local_id = i as u64 + 1;
                    let len = frame.len + local_bits;
                    if len > 64 {
                        return Err(EncodingError::TooDeep { total_bits: len });
                    }
                    stack.push(Frame {
                        term: kid,
                        code: (frame.code << local_bits) | local_id,
                        len,
                    });
                }
            }
        }
        if visited.len() != all_terms.len() {
            // Some term was never reached from the root: only possible with
            // a cycle detached from the root.
            let missing = all_terms
                .iter()
                .find(|t| !visited.contains_key(**t))
                .expect("count mismatch implies a missing term");
            return Err(EncodingError::Cycle(missing.to_string()));
        }

        // Normalization: pad right with zeros to the maximum length.
        let total_len = raw.iter().map(|&(_, _, len)| len).max().unwrap_or(1);
        let mut by_term = HashMap::with_capacity(raw.len());
        let mut by_id = BTreeMap::new();
        for (term, code, len) in raw {
            let id = code << (total_len - len);
            let term: Arc<str> = Arc::from(term);
            by_term.insert(term.clone(), TermEncoding { id, local_len: len });
            by_id.insert(id, term);
        }
        Ok(Self {
            by_term,
            by_id,
            total_len,
            root: Some(Arc::from(root)),
        })
    }

    /// Reconstructs an encoding from persisted `(term, id, local_len)`
    /// entries (the inverse of the dictionary serialization). The root is
    /// recovered as the entry with local length 1.
    pub fn from_entries(total_len: u32, entries: Vec<(String, u64, u32)>) -> Self {
        let mut by_term = HashMap::with_capacity(entries.len());
        let mut by_id = BTreeMap::new();
        let mut root = None;
        for (term, id, local_len) in entries {
            let term: Arc<str> = Arc::from(term.as_str());
            if local_len == 1 {
                root = Some(term.clone());
            }
            by_term.insert(term.clone(), TermEncoding { id, local_len });
            by_id.insert(id, term);
        }
        Self {
            by_term,
            by_id,
            total_len,
            root,
        }
    }

    /// Normalized identifier length `L` in bits.
    pub fn total_len(&self) -> u32 {
        self.total_len
    }

    /// The root term, if the encoding is non-empty.
    pub fn root(&self) -> Option<&str> {
        self.root.as_deref()
    }

    /// Number of encoded terms.
    pub fn len(&self) -> usize {
        self.by_term.len()
    }

    /// `true` if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.by_term.is_empty()
    }

    /// The encoding metadata of `term`.
    pub fn get(&self, term: &str) -> Option<&TermEncoding> {
        self.by_term.get(term)
    }

    /// The identifier of `term`.
    pub fn id(&self, term: &str) -> Option<u64> {
        self.by_term.get(term).map(|e| e.id)
    }

    /// The term owning identifier `id`.
    pub fn term(&self, id: u64) -> Option<&str> {
        self.by_id.get(&id).map(|t| &**t)
    }

    /// Like [`LiteMatEncoding::term`] but returns the shared `Arc`, so
    /// callers can build RDF terms without copying the string.
    pub fn term_arc(&self, id: u64) -> Option<std::sync::Arc<str>> {
        self.by_id.get(&id).cloned()
    }

    /// The subsumption interval of `term` — the paper's
    /// `[lowerBound, upperBound)` computed "using two bit-shift operations
    /// and an addition".
    pub fn interval(&self, term: &str) -> Option<IdInterval> {
        let enc = self.by_term.get(term)?;
        Some(self.interval_of(enc))
    }

    /// Interval from raw metadata (no lookup).
    #[inline]
    pub fn interval_of(&self, enc: &TermEncoding) -> IdInterval {
        let span_bits = self.total_len - enc.local_len;
        IdInterval {
            lower: enc.id,
            upper: enc.id + (1u64 << span_bits),
        }
    }

    /// `true` if `sub` is `sup` or a direct/indirect sub-term of `sup`.
    pub fn is_subsumed_by(&self, sub: &str, sup: &str) -> bool {
        match (self.id(sub), self.interval(sup)) {
            (Some(id), Some(iv)) => iv.contains(id),
            _ => false,
        }
    }

    /// All encoded terms whose identifier falls in `interval`, i.e. the
    /// sub-hierarchy — used by the baselines' UNION rewriting (§7.3.5).
    pub fn terms_in_interval(&self, interval: IdInterval) -> Vec<&str> {
        self.by_id
            .range(interval.lower..interval.upper)
            .map(|(_, t)| &**t)
            .collect()
    }

    /// Iterates over `(term, encoding)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TermEncoding)> + '_ {
        self.by_id
            .values()
            .map(move |t| (&**t, self.by_term.get(t).expect("index consistency")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 hierarchy.
    fn figure2() -> LiteMatEncoding {
        let edges = vec![
            ("A".to_string(), "Thing".to_string()),
            ("B".to_string(), "Thing".to_string()),
            ("C".to_string(), "B".to_string()),
            ("D".to_string(), "B".to_string()),
        ];
        LiteMatEncoding::encode("Thing", &edges, &[]).unwrap()
    }

    #[test]
    fn paper_figure_2_ids() {
        let enc = figure2();
        assert_eq!(enc.total_len(), 5);
        assert_eq!(enc.id("Thing"), Some(16)); // 10000
        assert_eq!(enc.id("A"), Some(20)); //       10100
        assert_eq!(enc.id("B"), Some(24)); //       11000
        assert_eq!(enc.id("C"), Some(25)); //       11001
        assert_eq!(enc.id("D"), Some(26)); //       11010
    }

    #[test]
    fn paper_figure_2_local_lengths() {
        let enc = figure2();
        assert_eq!(enc.get("Thing").unwrap().local_len, 1);
        assert_eq!(enc.get("A").unwrap().local_len, 3);
        assert_eq!(enc.get("B").unwrap().local_len, 3);
        assert_eq!(enc.get("C").unwrap().local_len, 5);
        assert_eq!(enc.get("D").unwrap().local_len, 5);
    }

    #[test]
    fn paper_figure_2_intervals() {
        let enc = figure2();
        let thing = enc.interval("Thing").unwrap();
        assert_eq!((thing.lower, thing.upper), (16, 32));
        let b = enc.interval("B").unwrap();
        assert_eq!((b.lower, b.upper), (24, 28));
        assert!(b.contains(enc.id("C").unwrap()));
        assert!(b.contains(enc.id("D").unwrap()));
        assert!(!b.contains(enc.id("A").unwrap()));
        let c = enc.interval("C").unwrap();
        assert!(c.is_singleton());
    }

    #[test]
    fn subsumption_checks() {
        let enc = figure2();
        assert!(enc.is_subsumed_by("C", "B"));
        assert!(enc.is_subsumed_by("C", "Thing"));
        assert!(enc.is_subsumed_by("B", "B"));
        assert!(!enc.is_subsumed_by("B", "C"));
        assert!(!enc.is_subsumed_by("A", "B"));
        assert!(!enc.is_subsumed_by("nonexistent", "B"));
    }

    #[test]
    fn terms_in_interval_is_sub_hierarchy() {
        let enc = figure2();
        let b = enc.interval("B").unwrap();
        let mut terms = enc.terms_in_interval(b);
        terms.sort_unstable();
        assert_eq!(terms, vec!["B", "C", "D"]);
    }

    #[test]
    fn id_term_roundtrip() {
        let enc = figure2();
        for term in ["Thing", "A", "B", "C", "D"] {
            let id = enc.id(term).unwrap();
            assert_eq!(enc.term(id), Some(term));
        }
        assert_eq!(enc.term(999), None);
    }

    #[test]
    fn orphans_attach_to_root() {
        let enc =
            LiteMatEncoding::encode("Thing", &[("A".into(), "Thing".into())], &["Orphan".into()])
                .unwrap();
        assert!(enc.is_subsumed_by("Orphan", "Thing"));
        assert!(!enc.is_subsumed_by("Orphan", "A"));
    }

    #[test]
    fn root_only() {
        let enc = LiteMatEncoding::encode("Thing", &[], &[]).unwrap();
        assert_eq!(enc.len(), 1);
        assert_eq!(enc.total_len(), 1);
        assert_eq!(enc.id("Thing"), Some(1));
        let iv = enc.interval("Thing").unwrap();
        assert!(iv.is_singleton());
    }

    #[test]
    fn single_child_uses_one_bit() {
        let enc = LiteMatEncoding::encode("R", &[("A".into(), "R".into())], &[]).unwrap();
        // R = 1, A = 11; normalized: R = 10 (2), A = 11 (3).
        assert_eq!(enc.total_len(), 2);
        assert_eq!(enc.id("R"), Some(2));
        assert_eq!(enc.id("A"), Some(3));
    }

    #[test]
    fn three_children_use_two_bits() {
        let edges: Vec<(String, String)> = ["A", "B", "C"]
            .iter()
            .map(|c| (c.to_string(), "R".to_string()))
            .collect();
        let enc = LiteMatEncoding::encode("R", &edges, &[]).unwrap();
        assert_eq!(enc.total_len(), 3);
        // R=100=4, A=101=5, B=110=6, C=111=7.
        assert_eq!(enc.id("R"), Some(4));
        assert_eq!(enc.id("A"), Some(5));
        assert_eq!(enc.id("B"), Some(6));
        assert_eq!(enc.id("C"), Some(7));
    }

    #[test]
    fn four_children_use_three_bits() {
        let edges: Vec<(String, String)> = ["A", "B", "C", "D"]
            .iter()
            .map(|c| (c.to_string(), "R".to_string()))
            .collect();
        let enc = LiteMatEncoding::encode("R", &edges, &[]).unwrap();
        assert_eq!(enc.total_len(), 4);
        assert_eq!(enc.id("A"), Some(0b1001));
        assert_eq!(enc.id("D"), Some(0b1100));
    }

    #[test]
    fn cycle_detection() {
        let edges = vec![
            ("A".to_string(), "B".to_string()),
            ("B".to_string(), "A".to_string()),
        ];
        let err = LiteMatEncoding::encode("Thing", &edges, &[]).unwrap_err();
        assert!(matches!(err, EncodingError::Cycle(_)));
    }

    #[test]
    fn self_loop_is_ignored() {
        let edges = vec![
            ("A".to_string(), "A".to_string()),
            ("A".to_string(), "Thing".to_string()),
        ];
        let enc = LiteMatEncoding::encode("Thing", &edges, &[]).unwrap();
        assert!(enc.is_subsumed_by("A", "Thing"));
    }

    #[test]
    fn multiple_parents_rejected() {
        let edges = vec![
            ("A".to_string(), "B".to_string()),
            ("A".to_string(), "C".to_string()),
            ("B".to_string(), "Thing".to_string()),
            ("C".to_string(), "Thing".to_string()),
        ];
        let err = LiteMatEncoding::encode("Thing", &edges, &[]).unwrap_err();
        assert_eq!(
            err,
            EncodingError::MultipleParents {
                term: "A".to_string()
            }
        );
    }

    #[test]
    fn duplicate_edges_are_fine() {
        let edges = vec![
            ("A".to_string(), "Thing".to_string()),
            ("A".to_string(), "Thing".to_string()),
        ];
        let enc = LiteMatEncoding::encode("Thing", &edges, &[]).unwrap();
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn deep_chain() {
        // A chain of 50 terms: each level adds 1 bit, total 51 bits — fits.
        let mut edges = Vec::new();
        for i in 1..50 {
            edges.push((format!("T{i}"), format!("T{}", i - 1)));
        }
        let enc = LiteMatEncoding::encode("T0", &edges, &[]).unwrap();
        assert!(enc.is_subsumed_by("T49", "T0"));
        assert!(enc.is_subsumed_by("T49", "T25"));
        assert!(!enc.is_subsumed_by("T25", "T49"));
    }

    #[test]
    fn too_deep_rejected() {
        let mut edges = Vec::new();
        for i in 1..80 {
            edges.push((format!("T{i}"), format!("T{}", i - 1)));
        }
        let err = LiteMatEncoding::encode("T0", &edges, &[]).unwrap_err();
        assert!(matches!(err, EncodingError::TooDeep { .. }));
    }

    #[test]
    fn intervals_nest_or_are_disjoint() {
        let enc = figure2();
        let intervals: Vec<IdInterval> = ["Thing", "A", "B", "C", "D"]
            .iter()
            .map(|t| enc.interval(t).unwrap())
            .collect();
        for a in &intervals {
            for b in &intervals {
                let nested = (a.lower >= b.lower && a.upper <= b.upper)
                    || (b.lower >= a.lower && b.upper <= a.upper);
                let disjoint = a.upper <= b.lower || b.upper <= a.lower;
                assert!(nested || disjoint, "{a} vs {b}");
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Random single-inheritance forests: term i's parent is a random
        /// term j < i (or the root).
        fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(String, String)>> {
            proptest::collection::vec(0usize..n.max(1), 1..n).prop_map(|parents| {
                parents
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| {
                        let child = format!("T{}", i + 1);
                        let parent = if p > i {
                            "R".to_string()
                        } else {
                            format!("T{p}")
                        };
                        (child, parent)
                    })
                    .collect()
            })
        }

        fn ancestors(edges: &[(String, String)], term: &str) -> Vec<String> {
            let parent: std::collections::HashMap<&str, &str> = edges
                .iter()
                .map(|(c, p)| (c.as_str(), p.as_str()))
                .collect();
            let mut out = vec![term.to_string()];
            let mut cur = term;
            while let Some(&p) = parent.get(cur) {
                out.push(p.to_string());
                cur = p;
            }
            if out.last().map(String::as_str) != Some("R") {
                out.push("R".to_string());
            }
            out
        }

        proptest! {
            #[test]
            fn interval_containment_equals_transitive_subsumption(
                edges in arb_edges(40)
            ) {
                // T0's parent may be "R" already; attach all orphans to R.
                let enc = LiteMatEncoding::encode("R", &edges, &["T0".to_string()]);
                prop_assume!(enc.is_ok());
                let enc = enc.unwrap();
                let terms: Vec<String> = (0..=edges.len())
                    .map(|i| format!("T{i}"))
                    .chain(["R".to_string()])
                    .collect();
                for sub in &terms {
                    prop_assume!(enc.id(sub).is_some());
                    let ancs = ancestors(&edges, sub);
                    for sup in &terms {
                        let expected = ancs.contains(sup) || sub == sup;
                        prop_assert_eq!(
                            enc.is_subsumed_by(sub, sup),
                            expected,
                            "sub={} sup={}", sub, sup
                        );
                    }
                }
            }

            #[test]
            fn ids_are_unique(edges in arb_edges(40)) {
                let enc = LiteMatEncoding::encode("R", &edges, &[]);
                prop_assume!(enc.is_ok());
                let enc = enc.unwrap();
                let mut seen = std::collections::HashSet::new();
                for (_, e) in enc.iter() {
                    prop_assert!(seen.insert(e.id), "duplicate id {}", e.id);
                }
            }
        }
    }
}
