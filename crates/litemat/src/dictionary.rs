//! The dictionaries of SuccinctEdge's architecture (paper §4).
//!
//! "Like most RDF stores, all triples are encoded according to some
//! dictionaries. [...] a dictionary should provide two basic operations:
//! `string-to-id` and `id-to-string`". SuccinctEdge uses:
//!
//! * a **concept dictionary** (LiteMat-encoded, bidirectional, with the
//!   local-length metadata of Figure 2(b));
//! * a **property dictionary** (LiteMat-encoded, same shape — covering both
//!   object and datatype properties);
//! * an **instance dictionary** ("each distinct entry is assigned an
//!   arbitrary unique integer value" §3.2).
//!
//! Every dictionary also persists *occurrence statistics* at creation time;
//! the query optimizer (§5.1) consults them, and for terms inside a
//! hierarchy the count of a term aggregates the counts of all its sub-terms
//! ("our statistic approach considers the hierarchy position of a given
//! concept or property when computing the total number of triples it is
//! involved in").

use crate::encoding::{IdInterval, LiteMatEncoding};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

// Local copies of the tiny binary-IO helpers (kept dependency-free; the
// sds crate is below this one in the dependency order by design choice:
// dictionaries do not need wavelet trees).
fn write_u64<W: io::Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u32<W: io::Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_str<W: io::Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}
fn read_u64<R: io::Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_u32<R: io::Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_str<R: io::Read>(r: &mut R) -> io::Result<String> {
    let len = read_u64(r)? as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A LiteMat-backed bidirectional dictionary for concepts or properties.
#[derive(Debug, Clone, Default)]
pub struct LiteMatDictionary {
    encoding: LiteMatEncoding,
    /// Occurrence count per identifier (own occurrences, not aggregated).
    counts: HashMap<u64, u64>,
}

impl LiteMatDictionary {
    /// Wraps a finished LiteMat encoding.
    pub fn new(encoding: LiteMatEncoding) -> Self {
        Self {
            encoding,
            counts: HashMap::new(),
        }
    }

    /// The `string-to-id` (`locate`) operation.
    pub fn id(&self, term: &str) -> Option<u64> {
        self.encoding.id(term)
    }

    /// The `id-to-string` (`extract`) operation.
    pub fn term(&self, id: u64) -> Option<&str> {
        self.encoding.term(id)
    }

    /// Zero-copy `extract`: the shared `Arc` of the term string.
    pub fn term_arc(&self, id: u64) -> Option<Arc<str>> {
        self.encoding.term_arc(id)
    }

    /// The subsumption interval of `term` (the reasoning primitive).
    pub fn interval(&self, term: &str) -> Option<IdInterval> {
        self.encoding.interval(term)
    }

    /// Access to the underlying encoding.
    pub fn encoding(&self) -> &LiteMatEncoding {
        &self.encoding
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.encoding.len()
    }

    /// `true` if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.encoding.is_empty()
    }

    /// Records one occurrence of `id` (called during store construction).
    pub fn record_occurrence(&mut self, id: u64) {
        *self.counts.entry(id).or_insert(0) += 1;
    }

    /// Own occurrence count of `term` (not counting sub-terms).
    pub fn count(&self, term: &str) -> u64 {
        self.encoding
            .id(term)
            .and_then(|id| self.counts.get(&id).copied())
            .unwrap_or(0)
    }

    /// Hierarchy-aggregated count: occurrences of `term` plus all its
    /// direct and indirect sub-terms (§5.1's statistics).
    pub fn aggregated_count(&self, term: &str) -> u64 {
        let Some(iv) = self.encoding.interval(term) else {
            return 0;
        };
        self.counts
            .iter()
            .filter(|(id, _)| iv.contains(**id))
            .map(|(_, c)| *c)
            .sum()
    }

    /// Serialized size in bytes of the persistent form (both directions of
    /// the mapping, the local lengths and the statistics) — what the paper
    /// persists for the Figure 9 comparison.
    pub fn serialized_size(&self) -> usize {
        let mut n = 8 + 4; // entry count + total_len
        for (term, _) in self.encoding.iter() {
            n += 8 + term.len(); // length-prefixed string
            n += 8 + 4 + 8; // id + local_len + count
        }
        n
    }

    /// Writes the persistent form.
    pub fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.encoding.len() as u64)?;
        write_u32(w, self.encoding.total_len())?;
        for (term, enc) in self.encoding.iter() {
            write_str(w, term)?;
            write_u64(w, enc.id)?;
            write_u32(w, enc.local_len)?;
            write_u64(w, self.counts.get(&enc.id).copied().unwrap_or(0))?;
        }
        Ok(())
    }

    /// Reads the persistent form written by [`LiteMatDictionary::serialize`].
    pub fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let n = read_u64(r)? as usize;
        let total_len = read_u32(r)?;
        let mut entries = Vec::with_capacity(n);
        let mut counts = HashMap::new();
        for _ in 0..n {
            let term = read_str(r)?;
            let id = read_u64(r)?;
            let local_len = read_u32(r)?;
            let count = read_u64(r)?;
            if count > 0 {
                counts.insert(id, count);
            }
            entries.push((term, id, local_len));
        }
        Ok(Self {
            encoding: LiteMatEncoding::from_entries(total_len, entries),
            counts,
        })
    }
}

/// The instance dictionary: dense, arbitrary integer identifiers.
#[derive(Debug, Clone, Default)]
pub struct InstanceDictionary {
    str_to_id: HashMap<Arc<str>, u64>,
    id_to_str: Vec<Arc<str>>,
    counts: Vec<u64>,
}

impl InstanceDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the identifier of `term`, inserting it if new. Identifiers
    /// are dense: `0..len`.
    pub fn get_or_insert(&mut self, term: &str) -> u64 {
        if let Some(&id) = self.str_to_id.get(term) {
            return id;
        }
        let id = self.id_to_str.len() as u64;
        let arc: Arc<str> = Arc::from(term);
        self.str_to_id.insert(arc.clone(), id);
        self.id_to_str.push(arc);
        self.counts.push(0);
        id
    }

    /// The `string-to-id` operation.
    pub fn id(&self, term: &str) -> Option<u64> {
        self.str_to_id.get(term).copied()
    }

    /// The `id-to-string` operation.
    pub fn term(&self, id: u64) -> Option<&str> {
        self.id_to_str.get(id as usize).map(|s| &**s)
    }

    /// Zero-copy `id-to-string`: the shared `Arc` of the stored key.
    pub fn term_arc(&self, id: u64) -> Option<Arc<str>> {
        self.id_to_str.get(id as usize).cloned()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.id_to_str.len()
    }

    /// `true` if the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.id_to_str.is_empty()
    }

    /// Records one occurrence of `id`.
    pub fn record_occurrence(&mut self, id: u64) {
        if let Some(c) = self.counts.get_mut(id as usize) {
            *c += 1;
        }
    }

    /// Occurrence count of the entry `id`.
    pub fn count(&self, id: u64) -> u64 {
        self.counts.get(id as usize).copied().unwrap_or(0)
    }

    /// Overwrites the occurrence count of `id` — used when replaying
    /// persisted dictionary segments, where counts arrive as totals
    /// rather than one `record_occurrence` call at a time.
    pub fn set_count(&mut self, id: u64, count: u64) {
        if let Some(c) = self.counts.get_mut(id as usize) {
            *c = count;
        }
    }

    /// Serialized size in bytes of the persistent form.
    pub fn serialized_size(&self) -> usize {
        8 + self
            .id_to_str
            .iter()
            .map(|s| 8 + s.len() + 8)
            .sum::<usize>()
    }

    /// Writes the persistent form.
    pub fn serialize<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        write_u64(w, self.id_to_str.len() as u64)?;
        for (i, s) in self.id_to_str.iter().enumerate() {
            write_str(w, s)?;
            write_u64(w, self.counts[i])?;
        }
        Ok(())
    }

    /// Reads the persistent form written by [`InstanceDictionary::serialize`].
    pub fn deserialize<R: io::Read>(r: &mut R) -> io::Result<Self> {
        let n = read_u64(r)? as usize;
        let mut dict = Self::new();
        for _ in 0..n {
            let term = read_str(r)?;
            let count = read_u64(r)?;
            let id = dict.get_or_insert(&term);
            dict.counts[id as usize] = count;
        }
        Ok(dict)
    }

    /// Iterates over `(id, term)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &str)> + '_ {
        self.id_to_str
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, &**s))
    }
}

/// The full dictionary set broadcast from the administration server to each
/// SuccinctEdge instance (§4): LiteMat-encoded concepts and properties plus
/// the per-store instance dictionary.
#[derive(Debug, Clone, Default)]
pub struct Dictionaries {
    /// Concept hierarchy (anchored at `owl:Thing`).
    pub concepts: LiteMatDictionary,
    /// Property hierarchy (object + datatype properties).
    pub properties: LiteMatDictionary,
    /// Instances and IRIs outside the ontology.
    pub instances: InstanceDictionary,
}

impl Dictionaries {
    /// Builds from finished encodings.
    pub fn new(concepts: LiteMatEncoding, properties: LiteMatEncoding) -> Self {
        Self {
            concepts: LiteMatDictionary::new(concepts),
            properties: LiteMatDictionary::new(properties),
            instances: InstanceDictionary::new(),
        }
    }

    /// Total serialized (on-disk) size — the paper's Figure 9 metric.
    pub fn serialized_size(&self) -> usize {
        self.concepts.serialized_size()
            + self.properties.serialized_size()
            + self.instances.serialized_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_encoding() -> LiteMatEncoding {
        LiteMatEncoding::encode(
            "Thing",
            &[
                ("A".into(), "Thing".into()),
                ("B".into(), "Thing".into()),
                ("C".into(), "B".into()),
            ],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn litemat_dictionary_lookup() {
        let dict = LiteMatDictionary::new(sample_encoding());
        let id = dict.id("C").unwrap();
        assert_eq!(dict.term(id), Some("C"));
        assert_eq!(dict.id("unknown"), None);
        assert_eq!(dict.len(), 4);
    }

    #[test]
    fn litemat_counts_aggregate_over_hierarchy() {
        let mut dict = LiteMatDictionary::new(sample_encoding());
        let a = dict.id("A").unwrap();
        let b = dict.id("B").unwrap();
        let c = dict.id("C").unwrap();
        for _ in 0..3 {
            dict.record_occurrence(c);
        }
        dict.record_occurrence(b);
        dict.record_occurrence(a);
        assert_eq!(dict.count("C"), 3);
        assert_eq!(dict.count("B"), 1);
        assert_eq!(dict.aggregated_count("B"), 4); // B + C
        assert_eq!(dict.aggregated_count("Thing"), 5); // everything
        assert_eq!(dict.aggregated_count("A"), 1);
        assert_eq!(dict.aggregated_count("unknown"), 0);
    }

    #[test]
    fn instance_dictionary_dense_ids() {
        let mut dict = InstanceDictionary::new();
        let a = dict.get_or_insert("http://x/a");
        let b = dict.get_or_insert("http://x/b");
        let a2 = dict.get_or_insert("http://x/a");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.term(0), Some("http://x/a"));
        assert_eq!(dict.term(5), None);
        assert_eq!(dict.id("http://x/b"), Some(1));
        assert_eq!(dict.id("http://x/zzz"), None);
    }

    #[test]
    fn instance_counts() {
        let mut dict = InstanceDictionary::new();
        let a = dict.get_or_insert("a");
        dict.record_occurrence(a);
        dict.record_occurrence(a);
        assert_eq!(dict.count(a), 2);
        assert_eq!(dict.count(99), 0);
    }

    #[test]
    fn serialization_sizes_match() {
        let mut dict = LiteMatDictionary::new(sample_encoding());
        dict.record_occurrence(dict.id("A").unwrap());
        let mut buf = Vec::new();
        dict.serialize(&mut buf).unwrap();
        assert_eq!(buf.len(), dict.serialized_size());

        let mut inst = InstanceDictionary::new();
        inst.get_or_insert("http://example.org/instance/1");
        inst.get_or_insert("http://example.org/instance/2");
        let mut buf = Vec::new();
        inst.serialize(&mut buf).unwrap();
        assert_eq!(buf.len(), inst.serialized_size());
    }

    #[test]
    fn dictionaries_total_size() {
        let d = Dictionaries::new(sample_encoding(), sample_encoding());
        assert_eq!(
            d.serialized_size(),
            d.concepts.serialized_size()
                + d.properties.serialized_size()
                + d.instances.serialized_size()
        );
    }
}
