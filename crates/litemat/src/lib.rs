//! # se-litemat — the LiteMat semantic-aware encoding scheme
//!
//! LiteMat (§3.2 of the paper) assigns integer identifiers to ontology terms
//! such that the identifier of a term is *prefixed* (in binary) by the
//! identifier of its direct parent. After normalizing all identifiers to a
//! common bit length, the set of direct and indirect sub-terms of any term
//! `T` is exactly the contiguous interval
//!
//! ```text
//! [ id(T), id(T) + 2^(L - localLen(T)) )
//! ```
//!
//! computable with two bit shifts and one addition. RDFS `subClassOf` /
//! `subPropertyOf` reasoning therefore never materializes inferences and
//! never rewrites a query into a UNION — a triple pattern over a concept
//! becomes a range constraint over its identifier interval.
//!
//! The crate provides:
//!
//! * [`encoding::LiteMatEncoding`] — the prefix-code encoder for a term
//!   hierarchy (paper Figure 2), including the per-entry *local length*
//!   metadata and the interval computation;
//! * [`dictionary`] — the bidirectional dictionaries of §4 (concept,
//!   property and instance dictionaries with occurrence statistics);
//! * hierarchy-aware statistics used by the query optimizer (§5.1).

pub mod dictionary;
pub mod encoding;

pub use dictionary::{Dictionaries, InstanceDictionary, LiteMatDictionary};
pub use encoding::{EncodingError, IdInterval, LiteMatEncoding};
